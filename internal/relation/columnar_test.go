package relation

import (
	"math/rand"
	"sort"
	"testing"
)

func TestDict(t *testing.T) {
	d := newDict([]Value{5, 3, 5, 9, 3, 1})
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	for i, want := range []Value{1, 3, 5, 9} {
		if d.Value(int32(i)) != want {
			t.Fatalf("Value(%d) = %d, want %d", i, d.Value(int32(i)), want)
		}
	}
	if c, ok := d.Code(5); !ok || c != 2 {
		t.Fatalf("Code(5) = %d,%v", c, ok)
	}
	if _, ok := d.Code(4); ok {
		t.Fatal("Code(4) found an absent value")
	}
	for _, tc := range []struct {
		v    Value
		want int32
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {9, 3}, {10, 4}} {
		if got := d.SeekCode(tc.v); got != tc.want {
			t.Fatalf("SeekCode(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestColumnarRoundTripAndSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		vars := []int{3, 1, 7}
		tab := NewTable(vars)
		for i := 0; i < rng.Intn(50); i++ {
			tab.addRow([]Value{Value(rng.Intn(6)), Value(rng.Intn(6)), Value(rng.Intn(6))})
		}
		tab.dedup()
		order := []int{7, 3, 1}
		c := NewColumnar(tab, order)
		if c.Rows() != tab.Rows() || c.NumCols() != 3 {
			t.Fatalf("trial %d: shape %dx%d, want %dx3", trial, c.Rows(), c.NumCols(), tab.Rows())
		}
		back := c.Table()
		if !back.Equal(tab) {
			t.Fatalf("trial %d: Table() round trip lost rows", trial)
		}
		// rows must come out lexicographically sorted in the column order
		for r := 1; r < c.Rows(); r++ {
			prev, cur := back.Row(r-1), back.Row(r)
			cmp := 0
			for i := range cur {
				if prev[i] != cur[i] {
					if prev[i] < cur[i] {
						cmp = -1
					} else {
						cmp = 1
					}
					break
				}
			}
			if cmp >= 0 {
				t.Fatalf("trial %d: rows %d,%d not strictly sorted: %v then %v", trial, r-1, r, prev, cur)
			}
		}
	}
}

func TestColumnarProject(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		vars := []int{0, 1, 2}
		tab := NewTable(vars)
		for i := 0; i < 5+rng.Intn(40); i++ {
			tab.addRow([]Value{Value(rng.Intn(4)), Value(rng.Intn(4)), Value(rng.Intn(4))})
		}
		tab.dedup()
		c := NewColumnar(tab, vars)
		for _, proj := range [][]int{{0}, {0, 1}, {0, 1, 2}, {2}, {2, 0}, {1}} {
			want := tab.Project(proj)
			got := c.Project(proj)
			if !got.Equal(want) {
				t.Fatalf("trial %d: Project(%v) disagrees with Table.Project", trial, proj)
			}
		}
	}
	// Boolean projection: zero columns, non-empty input → the single empty row.
	tab := tableOf([]int{0}, []Value{1}, []Value{2})
	if got := NewColumnar(tab, []int{0}).ProjectPrefix(0); got.Rows() != 1 || len(got.Vars) != 0 {
		t.Fatalf("ProjectPrefix(0) on non-empty = %d rows", got.Rows())
	}
	empty := NewTable([]int{0})
	if got := NewColumnar(empty, []int{0}).ProjectPrefix(0); got.Rows() != 0 {
		t.Fatal("ProjectPrefix(0) on empty table must be empty")
	}
}

func TestTrieIterWalk(t *testing.T) {
	tab := tableOf([]int{0, 1},
		[]Value{1, 10}, []Value{1, 20}, []Value{3, 10}, []Value{5, 30}, []Value{5, 40}, []Value{5, 50})
	c := NewColumnar(tab, []int{0, 1})
	it := NewTrieIter(c)
	if it.Depth() != -1 {
		t.Fatalf("fresh iter depth %d", it.Depth())
	}
	it.Open()
	var walk [][2]Value
	for ; !it.AtEnd(); it.Next() {
		x := it.Key()
		it.Open()
		for ; !it.AtEnd(); it.Next() {
			walk = append(walk, [2]Value{x, it.Key()})
		}
		it.Up()
	}
	want := [][2]Value{{1, 10}, {1, 20}, {3, 10}, {5, 30}, {5, 40}, {5, 50}}
	if len(walk) != len(want) {
		t.Fatalf("walk %v, want %v", walk, want)
	}
	for i := range want {
		if walk[i] != want[i] {
			t.Fatalf("walk %v, want %v", walk, want)
		}
	}

	// Seek semantics at the top level: ≥ target, never backwards.
	it = NewTrieIter(c)
	it.Open()
	it.Seek(2)
	if it.AtEnd() || it.Key() != 3 {
		t.Fatalf("Seek(2) landed wrong")
	}
	it.Seek(3)
	if it.Key() != 3 {
		t.Fatal("Seek to current key must not move")
	}
	it.Seek(4)
	if it.AtEnd() || it.Key() != 5 {
		t.Fatal("Seek(4) must land on 5")
	}
	it.Seek(6)
	if !it.AtEnd() {
		t.Fatal("Seek past the last key must end the level")
	}
	// Seek within a sub-trie respects the prefix bounds.
	it = NewTrieIter(c)
	it.Open()
	it.Seek(5)
	it.Open()
	it.Seek(35)
	if it.AtEnd() || it.Key() != 40 {
		t.Fatal("nested Seek(35) under prefix 5 must land on 40")
	}
	it.Seek(60)
	if !it.AtEnd() {
		t.Fatal("nested Seek past the run must end the level")
	}
}

func TestSubOrder(t *testing.T) {
	got := SubOrder([]int{4, 2, 9, 0}, []int{0, 9})
	if len(got) != 2 || got[0] != 9 || got[1] != 0 {
		t.Fatalf("SubOrder = %v, want [9 0]", got)
	}
	if got := SubOrder([]int{1, 2}, nil); len(got) != 0 {
		t.Fatalf("empty vars SubOrder = %v", got)
	}
}

// randomTable builds a deduped table over vars with rows drawn from [0, dom).
func randomTable(rng *rand.Rand, vars []int, n, dom int) *Table {
	t := NewTable(vars)
	row := make([]Value, len(vars))
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = Value(rng.Intn(dom))
		}
		t.addRow(row)
	}
	t.dedup()
	return t
}

// chainJoinProject is the reference semantics: fold binary hash joins, then
// a distinct projection onto out.
func chainJoinProject(tables []*Table, out []int) *Table {
	acc := tables[0]
	for _, t := range tables[1:] {
		acc = acc.Join(t)
	}
	return acc.Project(out)
}

func TestLeapfrogTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		dom := 2 + rng.Intn(6)
		n := 1 + rng.Intn(40)
		r := randomTable(rng, []int{0, 1}, n, dom)
		s := randomTable(rng, []int{1, 2}, n, dom)
		u := randomTable(rng, []int{0, 2}, n, dom)
		order := []int{0, 1, 2}
		for nOut := 0; nOut <= 3; nOut++ {
			want := chainJoinProject([]*Table{r, s, u}, order[:nOut])
			got := LeapfrogJoin([]*Table{r, s, u}, order, nOut, 0)
			if !got.Equal(want) {
				t.Fatalf("trial %d nOut=%d: leapfrog %d rows, chain %d rows", trial, nOut, got.Rows(), want.Rows())
			}
		}
	}
}

func TestLeapfrogRandomOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		// 2–4 tables over random subsets of 4 variables, every variable covered.
		allVars := []int{0, 1, 2, 3}
		nt := 2 + rng.Intn(3)
		tables := make([]*Table, nt)
		covered := map[int]bool{}
		for i := range tables {
			var vars []int
			for _, v := range allVars {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
			if len(vars) == 0 {
				vars = []int{allVars[rng.Intn(4)]}
			}
			for _, v := range vars {
				covered[v] = true
			}
			tables[i] = randomTable(rng, vars, 1+rng.Intn(30), 2+rng.Intn(5))
		}
		var order []int
		for _, v := range allVars {
			if covered[v] {
				order = append(order, v)
			}
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		nOut := rng.Intn(len(order) + 1)
		want := chainJoinProject(tables, order[:nOut])
		got := LeapfrogJoin(tables, order, nOut, 7)
		if !got.Equal(want) {
			t.Fatalf("trial %d: leapfrog disagrees with chain (order %v, nOut %d)", trial, order, nOut)
		}
		// Output must arrive sorted and distinct (no dedup pass ran).
		for r := 1; r < got.Rows(); r++ {
			prev, cur := got.Row(r-1), got.Row(r)
			less := false
			for i := range cur {
				if prev[i] != cur[i] {
					less = prev[i] < cur[i]
					break
				}
			}
			if !less {
				t.Fatalf("trial %d: output rows %d,%d not strictly ascending", trial, r-1, r)
			}
		}
	}
}

func TestLeapfrogEdgeCases(t *testing.T) {
	// Empty input table → empty output, even with a cap hint.
	r := NewTable([]int{0, 1})
	s := tableOf([]int{1, 2}, []Value{1, 2})
	if got := LeapfrogJoin([]*Table{r, s}, []int{0, 1, 2}, 3, 100); got.Rows() != 0 {
		t.Fatal("join with an empty table must be empty")
	}
	// All-Boolean join: no variables, non-empty tables → true.
	if got := LeapfrogJoin([]*Table{TrueTable(), TrueTable()}, nil, 0, 0); got.Rows() != 1 {
		t.Fatal("Boolean true join lost its row")
	}
	// Single table: leapfrog degenerates to sort + projection.
	tab := tableOf([]int{0, 1}, []Value{2, 1}, []Value{1, 1}, []Value{2, 9})
	got := LeapfrogJoin([]*Table{tab}, []int{1, 0}, 1, 0)
	if want := tab.Project([]int{1}); !got.Equal(want) {
		t.Fatal("single-table leapfrog projection wrong")
	}
	// Shared Columnars across concurrent joins (the sharded usage pattern).
	big := randomTable(rand.New(rand.NewSource(1)), []int{0, 1}, 200, 10)
	c := NewColumnar(big, []int{0, 1})
	done := make(chan *Table, 8)
	for i := 0; i < 8; i++ {
		go func() {
			done <- LeapfrogJoinColumnar([]*Columnar{c, c}, []int{0, 1}, 2, 0)
		}()
	}
	want := big.Clone()
	sortRows(want)
	for i := 0; i < 8; i++ {
		if got := <-done; !got.Equal(want) {
			t.Fatal("concurrent shared-columnar join corrupted")
		}
	}
}

// sortRows puts a table's rows in lexicographic order, for comparisons.
func sortRows(t *Table) {
	w := len(t.Vars)
	rows := make([][]Value, t.rows)
	for i := range rows {
		rows[i] = append([]Value(nil), t.Row(i)...)
	}
	sort.Slice(rows, func(a, b int) bool {
		for i := 0; i < w; i++ {
			if rows[a][i] != rows[b][i] {
				return rows[a][i] < rows[b][i]
			}
		}
		return false
	})
	t.data = t.data[:0]
	for _, r := range rows {
		t.data = append(t.data, r...)
	}
}

func TestNewColumnarSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tab := randomTable(rng, []int{2, 0, 5}, rng.Intn(60), 2+rng.Intn(8))
		sortRows(tab)
		c := NewColumnarSorted(tab)
		if !c.Table().Equal(tab) {
			t.Fatalf("trial %d: NewColumnarSorted round trip lost rows", trial)
		}
		// The encoding must agree with the sorting constructor, column order
		// being the table's own.
		want := NewColumnar(tab, tab.Vars)
		if !c.Table().Equal(want.Table()) {
			t.Fatalf("trial %d: sorted and sorting constructors disagree", trial)
		}
		for i := range c.codes {
			for r := range c.codes[i] {
				if c.codes[i][r] != want.codes[i][r] {
					t.Fatalf("trial %d: code blocks differ at col %d row %d", trial, i, r)
				}
			}
		}
	}
}

func TestMergeSemijoinAlignedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		dom := 2 + rng.Intn(6)
		tt := randomTable(rng, []int{0, 1, 2}, rng.Intn(80), dom)
		ut := randomTable(rng, []int{0, 1, 3}, rng.Intn(80), dom)
		tc := NewColumnar(tt, []int{0, 1, 2})
		uc := NewColumnar(ut, []int{0, 1, 3})
		out, ok := MergeSemijoin(tc, uc)
		if !ok {
			t.Fatalf("trial %d: aligned pair not merge-eligible", trial)
		}
		want := tt.Semijoin(ut)
		if !out.Table().Equal(want) {
			t.Fatalf("trial %d: aligned merge %d rows, hash %d rows", trial, out.Rows(), want.Rows())
		}
	}
}

func TestMergeSemijoinProbeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		dom := 2 + rng.Intn(6)
		tt := randomTable(rng, []int{0, 1, 2}, rng.Intn(80), dom)
		ut := randomTable(rng, []int{1, 3}, rng.Intn(80), dom)
		// t's column order buries the shared variable 1 mid-order, so only
		// the probe kernel applies.
		tc := NewColumnar(tt, []int{2, 1, 0})
		uc := NewColumnar(ut, []int{1, 3})
		out, ok := MergeSemijoin(tc, uc)
		if !ok {
			t.Fatalf("trial %d: probe pair not merge-eligible", trial)
		}
		want := tt.Semijoin(ut)
		if !out.Table().Equal(want) {
			t.Fatalf("trial %d: probe merge %d rows, hash %d rows", trial, out.Rows(), want.Rows())
		}
	}
}

func TestMergeSemijoinEdges(t *testing.T) {
	tt := tableOf([]int{0, 1}, []Value{1, 2}, []Value{3, 4})
	tc := NewColumnar(tt, []int{0, 1})
	// Shared variables not a prefix of u: not eligible.
	u := NewColumnar(tableOf([]int{2, 0}, []Value{7, 1}), []int{2, 0})
	if _, ok := MergeSemijoin(tc, u); ok {
		t.Fatal("non-prefix u side must not be merge-eligible")
	}
	// No shared variables: u non-empty keeps everything, u empty keeps nothing.
	full, ok := MergeSemijoin(tc, NewColumnar(tableOf([]int{5}, []Value{9}), []int{5}))
	if !ok || full != tc {
		t.Fatal("disjoint non-empty u must return t itself")
	}
	none, ok := MergeSemijoin(tc, NewColumnar(NewTable([]int{5}), []int{5}))
	if !ok || none.Rows() != 0 {
		t.Fatal("disjoint empty u must empty t")
	}
	// Empty t short-circuits; empty u with shared vars empties t.
	et := NewColumnar(NewTable([]int{0, 1}), []int{0, 1})
	if out, ok := MergeSemijoin(et, tc); !ok || out.Rows() != 0 {
		t.Fatal("empty t must stay empty")
	}
	eu := NewColumnar(NewTable([]int{0, 9}), []int{0, 9})
	if out, ok := MergeSemijoin(tc, eu); !ok || out.Rows() != 0 {
		t.Fatal("empty u with shared vars must empty t")
	}
	// Unfiltered aligned merge returns t itself (no copy).
	if out, ok := MergeSemijoin(tc, tc); !ok || out != tc {
		t.Fatal("self-semijoin must return t unchanged")
	}
}

func BenchmarkTrieIterSeek(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 1 << 16
	tab := NewTable([]int{0, 1})
	for i := 0; i < n; i++ {
		tab.addRow([]Value{Value(rng.Intn(n / 4)), Value(rng.Intn(64))})
	}
	tab.dedup()
	c := NewColumnar(tab, []int{0, 1})
	targets := make([]Value, 4096)
	for i := range targets {
		targets[i] = Value(rng.Intn(n / 4))
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := NewTrieIter(c)
		it.Open()
		for _, v := range targets {
			it.Seek(v)
			if it.AtEnd() {
				break
			}
		}
	}
}

// gallopCodesBranchy is the pre-optimisation gallop (branchy binary search),
// kept here as the benchmark baseline for BenchmarkGallop.
func gallopCodesBranchy(col []int32, from, hi int, target int32) int {
	if from >= hi || col[from] >= target {
		return from
	}
	lo, step := from, 1
	for lo+step < hi && col[lo+step] < target {
		lo += step
		step <<= 1
	}
	r := hi
	if lo+step < hi {
		r = lo + step
	}
	lo++
	for lo < r {
		mid := int(uint(lo+r) >> 1)
		if col[mid] < target {
			lo = mid + 1
		} else {
			r = mid
		}
	}
	return lo
}

func TestGallopCodesMatchesBranchy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		col := make([]int32, n)
		v := int32(0)
		for i := range col {
			v += int32(rng.Intn(3))
			col[i] = v
		}
		from := rng.Intn(n)
		target := int32(rng.Intn(int(v) + 2))
		got := gallopCodes(col, from, n, target)
		want := gallopCodesBranchy(col, from, n, target)
		if got != want {
			t.Fatalf("gallopCodes(from=%d, target=%d) = %d, branchy = %d", from, target, got, want)
		}
	}
}

func BenchmarkGallop(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	n := 1 << 18
	col := make([]int32, n)
	v := int32(0)
	for i := range col {
		v += int32(rng.Intn(3))
		col[i] = v
	}
	targets := make([]int32, 1024)
	for i := range targets {
		targets[i] = int32(rng.Intn(int(v)))
	}
	b.Run("branchfree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range targets {
				gallopCodes(col, 0, n, t)
			}
		}
	})
	b.Run("branchy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range targets {
				gallopCodesBranchy(col, 0, n, t)
			}
		}
	})
}

func BenchmarkMergeSemijoin(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	tt := randomTable(rng, []int{0, 1}, 50000, 4000)
	ut := randomTable(rng, []int{0, 2}, 5000, 4000)
	tc := NewColumnar(tt, []int{0, 1})
	uc := NewColumnar(ut, []int{0, 2})
	b.Run("merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := MergeSemijoin(tc, uc); !ok {
				b.Fatal("not eligible")
			}
		}
	})
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tt.Semijoin(ut)
		}
	})
}

func BenchmarkLeapfrogTriangle(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	n, dom := 3000, 300
	r := randomTable(rng, []int{0, 1}, n, dom)
	s := randomTable(rng, []int{1, 2}, n, dom)
	u := randomTable(rng, []int{0, 2}, n, dom)
	tables := []*Table{r, s, u}
	order := []int{0, 1, 2}
	b.Run("leapfrog", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			LeapfrogJoin(tables, order, 3, 0)
		}
	})
	b.Run("chain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			chainJoinProject(tables, order)
		}
	})
}
