package relation

import (
	"fmt"
	"sort"
)

// LeapfrogJoin computes the natural join of tables with a leapfrog-triejoin:
// every table is encoded into a sorted Columnar over the global variable
// order and the join proceeds variable by variable, intersecting the trie
// levels of all tables containing that variable by leapfrogging seeks. The
// kernel is worst-case optimal: with the order's existential suffix chosen
// from a fractional edge cover, total work is bounded by the AGM output
// bound rather than by intermediate join sizes.
//
// order must enumerate exactly the union of the tables' variables; the first
// nOut of them are the output columns. Because output variables lead the
// order and enumeration is lexicographic, the result arrives sorted and
// distinct — trailing (existential) variables are short-circuited after the
// first witness, so no dedup pass is needed. capHint, when positive,
// pre-sizes the output (callers pass the AGM bound r^fhw).
func LeapfrogJoin(tables []*Table, order []int, nOut, capHint int) *Table {
	cols := make([]*Columnar, len(tables))
	for i, t := range tables {
		cols[i] = NewColumnar(t, SubOrder(order, t.Vars))
	}
	return LeapfrogJoinColumnar(cols, order, nOut, capHint)
}

// LeapfrogJoinColumnar is LeapfrogJoin over pre-built Columnars whose column
// orders are subsequences of order (see SubOrder). Columnars are immutable,
// so callers may share them across concurrent joins — the sharded evaluator
// encodes the broadcast side once and joins it against every shard fragment.
func LeapfrogJoinColumnar(cols []*Columnar, order []int, nOut, capHint int) *Table {
	out := NewTable(order[:nOut])
	for _, c := range cols {
		if c.Rows() == 0 {
			return out
		}
	}
	j := &leapfrogJoiner{order: order, nOut: nOut, out: out, binding: make([]Value, len(order))}
	j.atDepth = make([][]*TrieIter, len(order))
	for _, c := range cols {
		it := NewTrieIter(c)
		ci := 0
		for d, v := range order {
			if ci < len(c.Vars) && c.Vars[ci] == v {
				j.atDepth[d] = append(j.atDepth[d], it)
				ci++
			}
		}
		if ci != len(c.Vars) {
			panic(fmt.Sprintf("relation: leapfrog columnar vars %v not a subsequence of order %v", c.Vars, order))
		}
	}
	for d, its := range j.atDepth {
		if len(its) == 0 {
			panic(fmt.Sprintf("relation: leapfrog order variable %d covered by no relation", order[d]))
		}
	}
	if len(order) == 0 {
		// All-Boolean join of non-empty tables: the single empty row.
		out.addRow(nil)
		return out
	}
	if capHint > 0 && nOut > 0 {
		out.data = make([]Value, 0, capHint*nOut)
	}
	j.run(0)
	return out
}

// leapfrogJoiner holds the recursion state of one LeapfrogJoinColumnar call.
type leapfrogJoiner struct {
	order   []int
	nOut    int
	atDepth [][]*TrieIter // iterators participating at each depth
	binding []Value
	out     *Table
}

// run enumerates the join at depth d (binding[:d] fixed) and reports whether
// the subtree emitted at least one row — the signal the existential
// short-circuit keys off.
func (j *leapfrogJoiner) run(d int) bool {
	if d == len(j.order) {
		j.out.addRow(j.binding[:j.nOut])
		return true
	}
	its := j.atDepth[d]
	for _, it := range its {
		it.Open()
	}
	found := false
	live := true
	for _, it := range its {
		if it.AtEnd() {
			live = false
			break
		}
	}
	if live {
		// leapfrog init: order iterators by key, then intersect.
		sort.Slice(its, func(a, b int) bool { return its[a].Key() < its[b].Key() })
		p := 0
		for leapfrogSearch(its, &p) {
			j.binding[d] = its[p].Key()
			if j.run(d + 1) {
				found = true
				if d >= j.nOut {
					// Existential depth: one witness per output prefix
					// suffices, so every emitted prefix is distinct.
					break
				}
			}
			its[p].Next()
			if its[p].AtEnd() {
				break
			}
			p = (p + 1) % len(its)
		}
	}
	for _, it := range its {
		it.Up()
	}
	return found
}

// leapfrogSearch advances the iterators round-robin — the least-positioned
// one seeks to the current maximum key — until all agree on one key (true)
// or some level is exhausted (false). On success its[*p] sits on the common
// key.
func leapfrogSearch(its []*TrieIter, p *int) bool {
	n := len(its)
	for {
		maxKey := its[(*p+n-1)%n].Key()
		cur := its[*p]
		if cur.Key() == maxKey {
			return true
		}
		cur.Seek(maxKey)
		if cur.AtEnd() {
			return false
		}
		*p = (*p + 1) % n
	}
}
