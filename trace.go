package hypertree

import (
	"context"
	"io"

	"hypertree/internal/obs"
)

// A Trace collects the spans of one traced query: compile stages (parse,
// decomposition, every race entrant with its win/lose verdict) and
// execution stages (per-node λ-join materialisation with actual vs
// estimated cardinality, semijoin passes, enumeration, sharded
// scatter-gather). Create one with NewTrace, attach it with WithTrace at
// compile time or ContextWithTrace at execution time, and read it with
// Spans, Render, or Plan.ExplainAnalyze. All methods are nil-safe and safe
// for concurrent use; see the internal obs package for the full contract.
type Trace = obs.Trace

// A TraceSpan is one traced stage of a query's life: its name (see the
// span taxonomy in docs/ARCHITECTURE.md), wall time, step count, and
// actual vs estimated output cardinality.
type TraceSpan = obs.Span

// NewTrace returns an empty trace; span start offsets count from this
// moment.
func NewTrace() *Trace { return obs.New() }

// ContextWithTrace returns ctx carrying t: every Compile or Execute under
// the returned context records its spans into t, without the trace
// becoming part of the plan or its cache identity. A nil trace returns ctx
// unchanged. This is how a serving layer traces individual requests while
// every request still shares one PlanCache slot.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return obs.NewContext(ctx, t)
}

// TraceFromContext returns the trace carried by ctx, or nil (a valid,
// inert trace receiver).
func TraceFromContext(ctx context.Context) *Trace { return obs.FromContext(ctx) }

// WithTrace attaches t to the compilation and to every subsequent
// execution of the compiled plan that does not carry its own context
// trace. A context trace (ContextWithTrace) takes precedence, and the
// option never participates in PlanCache identity — note that a PlanCache
// hit therefore returns the cached plan without this option's trace;
// per-request tracing through a cache should use ContextWithTrace.
func WithTrace(t *Trace) CompileOption {
	return func(c *compileConfig) { c.trace = t }
}

// QError is the symmetric relative error of a cardinality estimate:
// max(est/actual, actual/est), clamped so empty outputs stay finite. 1 is
// a perfect estimate.
func QError(est float64, actual int64) float64 { return obs.QError(est, actual) }

// A QErrorEntry summarises the observed estimation error of one
// decomposition node under one statistics snapshot — see QErrorReport.
type QErrorEntry = obs.QErrorEntry

// QErrorReport returns the process-wide cardinality-estimation feedback
// table, worst q-error first: every traced execution records, per
// decomposition node, how far the planner's estimate sat from the
// materialised cardinality, keyed by the statistics fingerprint the
// estimate was priced against. It is the seam adaptive re-planning
// consumes — a systematically wrong entry names the exact node whose plan
// should be re-raced against reality (see StatsRefresher for the consumer
// that closes the loop).
func QErrorReport() []QErrorEntry { return obs.QErrorReport() }

// ResetQErrorReport empties the process-wide feedback table (tests, or a
// statistics refresh that invalidates old fingerprints).
func ResetQErrorReport() { obs.ResetQErrors() }

// SetLiveStatsFingerprint announces the currently-serving statistics
// fingerprint to the process-wide feedback table: when the table is full,
// entries recorded under any other (stale) fingerprint are evicted before
// new observations are dropped, so feedback for the live snapshot survives
// a history of refreshes.
func SetLiveStatsFingerprint(fingerprint string) { obs.SetLiveFingerprint(fingerprint) }

// A TraceSampler decides which requests carry a trace when tracing is
// always-on: every Nth Sample call returns a fresh trace, the rest return
// nil (and a nil *Trace costs nothing). Safe for concurrent use; a nil
// sampler never samples. Create with NewTraceSampler.
type TraceSampler = obs.Sampler

// NewTraceSampler returns a 1-in-n trace sampler (n ≤ 0 disables sampling
// by returning nil, which is a valid inert sampler).
func NewTraceSampler(n int) *TraceSampler { return obs.NewSampler(n) }

// An OTLPExporter ships traces as OpenTelemetry OTLP/JSON — to a local
// file/writer sink (newline-delimited payloads) or POSTed to an OTLP/HTTP
// traces endpoint — with the span taxonomy mapped onto OTel spans: shared
// trace IDs, deterministic span IDs, parenthood inferred from span interval
// containment, and kernel/node/shard/rows/estimate/q-error attributes. The
// encoding is hand-rolled (no SDK dependency); see MarshalOTLP for the raw
// payload. All methods are nil-safe and safe for concurrent use.
type OTLPExporter = obs.OTLPExporter

// NewOTLPFileExporter returns an exporter appending newline-delimited
// OTLP/JSON payloads to the file at path (created or appended to).
func NewOTLPFileExporter(path, service string) (*OTLPExporter, error) {
	return obs.NewOTLPFileExporter(path, service)
}

// NewOTLPWriterExporter returns an exporter appending newline-delimited
// OTLP/JSON payloads to w.
func NewOTLPWriterExporter(w io.Writer, service string) *OTLPExporter {
	return obs.NewOTLPWriterExporter(w, service)
}

// NewOTLPHTTPExporter returns an exporter POSTing each trace's OTLP/JSON
// payload to an OTLP/HTTP traces endpoint (typically
// http://host:4318/v1/traces).
func NewOTLPHTTPExporter(endpoint, service string) *OTLPExporter {
	return obs.NewOTLPHTTPExporter(endpoint, service)
}

// MarshalOTLP encodes the completed spans of the given traces as one
// OpenTelemetry OTLP/JSON traces payload for the named service.
func MarshalOTLP(service string, traces ...*Trace) ([]byte, error) {
	return obs.MarshalOTLP(service, traces...)
}
