package hypertree

import (
	"context"

	"hypertree/internal/obs"
)

// A Trace collects the spans of one traced query: compile stages (parse,
// decomposition, every race entrant with its win/lose verdict) and
// execution stages (per-node λ-join materialisation with actual vs
// estimated cardinality, semijoin passes, enumeration, sharded
// scatter-gather). Create one with NewTrace, attach it with WithTrace at
// compile time or ContextWithTrace at execution time, and read it with
// Spans, Render, or Plan.ExplainAnalyze. All methods are nil-safe and safe
// for concurrent use; see the internal obs package for the full contract.
type Trace = obs.Trace

// A TraceSpan is one traced stage of a query's life: its name (see the
// span taxonomy in docs/ARCHITECTURE.md), wall time, step count, and
// actual vs estimated output cardinality.
type TraceSpan = obs.Span

// NewTrace returns an empty trace; span start offsets count from this
// moment.
func NewTrace() *Trace { return obs.New() }

// ContextWithTrace returns ctx carrying t: every Compile or Execute under
// the returned context records its spans into t, without the trace
// becoming part of the plan or its cache identity. A nil trace returns ctx
// unchanged. This is how a serving layer traces individual requests while
// every request still shares one PlanCache slot.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return obs.NewContext(ctx, t)
}

// TraceFromContext returns the trace carried by ctx, or nil (a valid,
// inert trace receiver).
func TraceFromContext(ctx context.Context) *Trace { return obs.FromContext(ctx) }

// WithTrace attaches t to the compilation and to every subsequent
// execution of the compiled plan that does not carry its own context
// trace. A context trace (ContextWithTrace) takes precedence, and the
// option never participates in PlanCache identity — note that a PlanCache
// hit therefore returns the cached plan without this option's trace;
// per-request tracing through a cache should use ContextWithTrace.
func WithTrace(t *Trace) CompileOption {
	return func(c *compileConfig) { c.trace = t }
}

// QError is the symmetric relative error of a cardinality estimate:
// max(est/actual, actual/est), clamped so empty outputs stay finite. 1 is
// a perfect estimate.
func QError(est float64, actual int64) float64 { return obs.QError(est, actual) }

// A QErrorEntry summarises the observed estimation error of one
// decomposition node under one statistics snapshot — see QErrorReport.
type QErrorEntry = obs.QErrorEntry

// QErrorReport returns the process-wide cardinality-estimation feedback
// table, worst q-error first: every traced execution records, per
// decomposition node, how far the planner's estimate sat from the
// materialised cardinality, keyed by the statistics fingerprint the
// estimate was priced against. It is the seam adaptive re-planning will
// consume — a systematically wrong entry names the exact node whose plan
// should be re-raced against reality.
func QErrorReport() []QErrorEntry { return obs.QErrorReport() }

// ResetQErrorReport empties the process-wide feedback table (tests, or a
// statistics refresh that invalidates old fingerprints).
func ResetQErrorReport() { obs.ResetQErrors() }
