package hypertree

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"hypertree/internal/gen"
)

// Cross-decomposer answer equivalence: on random acyclic and cyclic queries
// the Greedy GHD plan returns exactly the answer table of the exact
// k-decomp plan (with the naive join as the semantics reference), and the
// greedy width never undercuts the exact hypertree width on these
// instances.
func TestPropertyGreedyGHDAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	ctx := context.Background()
	cyclicSeen, acyclicSeen := 0, 0
	for trial := 0; trial < 50; trial++ {
		// alternate unconstrained random queries (mostly acyclic at this
		// size) with cyclic-by-construction random CSPs
		var q *Query
		if trial%2 == 0 {
			q = gen.RandomQuery(rng, 2+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(3))
		} else {
			nv := 3 + rng.Intn(4)
			q = gen.RandomCSP(rng, nv, nv+rng.Intn(4), 3)
		}
		db := gen.RandomDatabase(rng, q, 1+rng.Intn(20), 2+rng.Intn(5))
		if IsAcyclic(q) {
			acyclicSeen++
		} else {
			cyclicSeen++
		}

		exact, err := Compile(q, WithStrategy(StrategyHypertree))
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		greedy, err := Compile(q, WithStrategy(StrategyHypertree), WithDecomposer(GreedyDecomposer()))
		if err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
		naive, err := Compile(q, WithStrategy(StrategyNaive))
		if err != nil {
			t.Fatalf("trial %d naive: %v", trial, err)
		}

		// Width: the greedy result certifies ghw ≤ width, and ghw ≤ hw always;
		// a greedy width below the exact hw would mean the "exact" search is
		// not optimal for GHDs (fine) — but it can never be below 1, and on
		// binary/small-arity random queries it must not be below hw either
		// only when the decomposition is also a valid HD. The robust invariant
		// is: greedy width ≥ 1 and a valid GHD; and greedy width ≥ exact hw
		// whenever the greedy decomposition happens to satisfy condition 4.
		if greedy.Width() < 1 {
			t.Fatalf("trial %d: greedy width %d", trial, greedy.Width())
		}
		if err := ValidateGHD(greedy.Decomposition()); err != nil {
			t.Fatalf("trial %d: greedy plan decomposition invalid: %v", trial, err)
		}
		if ValidateHD(greedy.Decomposition()) == nil && greedy.Width() < exact.Width() {
			t.Fatalf("trial %d: greedy produced a valid HD of width %d below exact hw %d on %s",
				trial, greedy.Width(), exact.Width(), q)
		}

		ref, err := naive.Execute(ctx, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for name, p := range map[string]*Plan{"exact": exact, "greedy": greedy} {
			tab, err := p.Execute(ctx, db)
			if err != nil {
				t.Fatalf("trial %d %s execute: %v", trial, name, err)
			}
			if !tab.Equal(ref) {
				t.Fatalf("trial %d: %s plan disagrees with naive on %s", trial, name, q)
			}
		}
		exactBool, err := exact.ExecuteBoolean(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		greedyBool, err := greedy.ExecuteBoolean(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		if exactBool != greedyBool {
			t.Fatalf("trial %d: Boolean disagreement on %s", trial, q)
		}
	}
	if cyclicSeen == 0 || acyclicSeen == 0 {
		t.Fatalf("corpus covered %d cyclic / %d acyclic queries; want both non-zero", cyclicSeen, acyclicSeen)
	}
}

// Greedy width ≥ exact hypertree width on the structured families, where
// the greedy output is also a valid HD (tree-decomposition-derived GHDs on
// these families satisfy condition 4), making hw a true lower bound.
func TestGreedyWidthNeverBeatsExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    *Query
	}{
		{"cycle8", gen.Cycle(8)},
		{"grid33", gen.Grid(3, 3)},
		{"Q1", gen.Q1()},
		{"Q5", gen.Q5()},
		{"clique5", gen.CliqueBinary(5)},
		{"path7", gen.Path(7)},
		{"star6", gen.Star(6)},
	} {
		exact, err := Compile(tc.q, WithStrategy(StrategyHypertree))
		if err != nil {
			t.Fatalf("%s exact: %v", tc.name, err)
		}
		greedy, err := Compile(tc.q, WithStrategy(StrategyHypertree), WithDecomposer(GreedyDecomposer()))
		if err != nil {
			t.Fatalf("%s greedy: %v", tc.name, err)
		}
		if greedy.Width() < exact.Width() {
			t.Errorf("%s: greedy width %d < exact hw %d — a heuristic cannot beat the exact optimum here",
				tc.name, greedy.Width(), exact.Width())
		}
		t.Logf("%s: exact hw=%d greedy ghw≤%d", tc.name, exact.Width(), greedy.Width())
	}
}

// Projections agree between greedy and exact plans too.
func TestPropertyGreedyGHDAgreesWithHeads(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		base := gen.RandomQuery(rng, 3+rng.Intn(3), 2+rng.Intn(3), 2)
		v := base.VarName(rng.Intn(base.NumVars()))
		q := MustParseQuery(`ans(` + v + `) :- ` + stripHead(base.String()))
		db := gen.RandomDatabase(rng, q, 1+rng.Intn(15), 3)

		exact, err := Compile(q, WithStrategy(StrategyHypertree))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		greedy, err := Compile(q, WithStrategy(StrategyHypertree), WithDecomposer(GreedyDecomposer()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		te, err := exact.Execute(ctx, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tg, err := greedy.Execute(ctx, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !te.Equal(tg) {
			t.Fatalf("trial %d: projections disagree on %s", trial, q)
		}
	}
}

// The acceptance criterion of the greedy engine: a generated 50-atom cyclic
// hypergraph compiles in < 1s with GreedyDecomposer under a step budget
// that makes the exact search give up with ErrStepBudget. The greedy plan
// must execute and agree with itself under workers — and on every query
// both decomposers can compile (the property tests above) the answers
// match.
func TestGreedyGHDCompilesWhereExactCannot(t *testing.T) {
	q := gen.RandomCSP(rand.New(rand.NewSource(42)), 30, 50, 3)
	if IsAcyclic(q) {
		t.Fatal("RandomCSP must be cyclic")
	}
	const budget = 20000

	if _, err := Compile(q, WithStrategy(StrategyHypertree), WithStepBudget(budget)); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("exact search on the 50-atom CSP: err = %v, want ErrStepBudget", err)
	}

	start := time.Now()
	plan, err := Compile(q, WithStrategy(StrategyHypertree),
		WithDecomposer(GreedyDecomposer()), WithStepBudget(budget))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("greedy compile: %v", err)
	}
	if elapsed >= time.Second {
		t.Fatalf("greedy compile took %v, want < 1s", elapsed)
	}
	if !plan.Generalized() {
		t.Fatal("greedy plan must be marked generalized")
	}
	if err := ValidateGHD(plan.Decomposition()); err != nil {
		t.Fatal(err)
	}
	t.Logf("50-atom CSP: greedy compiled width-%d GHD in %v (exact exhausted %d steps)",
		plan.Width(), elapsed, budget)

	// the plan is executable: run it against a small random database
	db := gen.RandomDatabase(rand.New(rand.NewSource(1)), q, 6, 3)
	ctx := context.Background()
	seqAns, err := plan.ExecuteBoolean(ctx, db)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	parPlan, err := Compile(q, WithStrategy(StrategyHypertree),
		WithDecomposer(GreedyDecomposer()), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	parAns, err := parPlan.ExecuteBoolean(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if seqAns != parAns {
		t.Fatalf("sequential (%v) and parallel (%v) greedy plans disagree", seqAns, parAns)
	}
}

// GreedyDecomposer honours the compile options end to end: MaxWidth,
// StepBudget, cancellation, and the option validators.
func TestGreedyCompileOptions(t *testing.T) {
	q := gen.Cycle(10)
	if _, err := Compile(q, WithStrategy(StrategyHypertree),
		WithDecomposer(GreedyDecomposer()), WithMaxWidth(2)); err != nil {
		t.Fatalf("maxWidth 2: %v", err)
	}
	if _, err := Compile(q, WithStrategy(StrategyHypertree),
		WithDecomposer(GreedyDecomposer()), WithMaxWidth(1)); !errors.Is(err, ErrWidthExceeded) {
		t.Fatalf("maxWidth 1: err = %v, want ErrWidthExceeded", err)
	}
	if _, err := Compile(q, WithStrategy(StrategyHypertree),
		WithDecomposer(GreedyDecomposer()), WithStepBudget(1)); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("budget 1: err = %v, want ErrStepBudget", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileContext(ctx, q, WithStrategy(StrategyHypertree),
		WithDecomposer(GreedyDecomposer())); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled: err = %v, want context.Canceled", err)
	}

	// restricted portfolios and seeds still produce valid plans
	for _, opts := range [][]GreedyOption{
		{WithGreedyOrderings(GreedyMinFill)},
		{WithGreedyOrderings(GreedyMinDegree, GreedyMaxCardinality)},
		{WithGreedyRestarts(0)},
		{WithGreedyRestarts(5), WithGreedySeed(99)},
	} {
		plan, err := Compile(q, WithStrategy(StrategyHypertree), WithDecomposer(GreedyDecomposer(opts...)))
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateGHD(plan.Decomposition()); err != nil {
			t.Fatal(err)
		}
	}
}
