package hypertree

import (
	"math/rand"
	"testing"

	"hypertree/internal/gen"
)

// Cross-strategy property test: on random queries and random databases,
// every applicable evaluation strategy returns the same answer relation.
// This is the end-to-end correctness argument for Lemma 4.6 + Yannakakis
// against the semantics-by-definition naive join.
func TestPropertyStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		q := gen.RandomQuery(rng, 2+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(3))
		db := gen.RandomDatabase(rng, q, 1+rng.Intn(20), 2+rng.Intn(5))

		okNaive, tabNaive, err := Evaluate(db, q, StrategyNaive)
		if err != nil {
			t.Fatalf("trial %d naive: %v", trial, err)
		}
		okHD, tabHD, err := Evaluate(db, q, StrategyHypertree)
		if err != nil {
			t.Fatalf("trial %d hd: %v", trial, err)
		}
		if okNaive != okHD || !tabNaive.Equal(tabHD) {
			t.Fatalf("trial %d: naive and hypertree disagree on %s", trial, q)
		}
		if IsAcyclic(q) {
			okY, tabY, err := Evaluate(db, q, StrategyAcyclic)
			if err != nil {
				t.Fatalf("trial %d yannakakis: %v", trial, err)
			}
			if okY != okNaive || !tabY.Equal(tabNaive) {
				t.Fatalf("trial %d: yannakakis disagrees on %s", trial, q)
			}
		}
	}
}

// The same agreement must hold for non-Boolean queries with projection.
func TestPropertyStrategiesAgreeWithHeads(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		base := gen.RandomQuery(rng, 3+rng.Intn(3), 2+rng.Intn(3), 2)
		// project onto one random body variable
		v := base.VarName(rng.Intn(base.NumVars()))
		q := MustParseQuery(`ans(` + v + `) :- ` + stripHead(base.String()))
		db := gen.RandomDatabase(rng, q, 1+rng.Intn(15), 3)

		_, tabNaive, err := Evaluate(db, q, StrategyNaive)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, tabHD, err := Evaluate(db, q, StrategyHypertree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !tabNaive.Equal(tabHD) {
			t.Fatalf("trial %d: projections disagree on %s", trial, q)
		}
	}
}

// stripHead removes the "ans() :- " prefix produced by Query.String for
// headless queries.
func stripHead(s string) string {
	const prefix = "ans() :- "
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):]
	}
	return s
}
