package hypertree

import (
	"fmt"
	"strings"

	"hypertree/internal/obs"
)

// EstimatedCost returns the plan's total estimated evaluation cost under
// the statistics it was compiled with: the sum over decomposition nodes of
// the estimated cardinality of each node's materialised table (the AGM
// bound Π_{R∈λ} |R|^w, tightened by the per-column distinct counts). It is
// the quantity cost-based compilation minimises among same-width plans. 0
// means no cost model: the plan was compiled without WithStats/
// WithCostModel, or its strategy uses no decomposition.
func (p *Plan) EstimatedCost() float64 { return p.estCost }

// PlanStats returns the statistics snapshot the plan was compiled with, or
// nil when compilation was width-only.
func (p *Plan) PlanStats() *Stats { return p.stats }

// Explain renders the plan's per-node cost/width report: for every
// decomposition node its χ and λ labels (with fractional weights where
// present), the node width, and — when the plan was compiled with
// statistics — the relation cardinalities joined and the estimated
// cardinality of the node table. The header line summarises the plan, the
// ranking mode (cost-based or width-only) and the total estimated cost.
// Reading the report answers the planner questions: which relations landed
// in λ, what each node is expected to materialise, and why this plan beat
// its same-width rivals.
func (p *Plan) Explain() string {
	var b strings.Builder
	b.WriteString(p.String())
	switch {
	case p.dec == nil:
		fmt.Fprintf(&b, "\n  no decomposition: the %s strategy plans no λ-joins", strategyName(p.strategy))
		if p.strategy == StrategyAcyclic {
			b.WriteString(" (Yannakakis evaluates the join tree directly)")
		}
		b.WriteString("\n")
		return b.String()
	case p.stats == nil:
		b.WriteString("\n  ranking: width-only (no statistics; compile with WithStats/WithCostModel for cost-based plans)\n")
	default:
		fmt.Fprintf(&b, "\n  ranking: cost-based, estimated total cost %.4g\n  %s\n", p.estCost, p.stats)
	}
	var visit func(n *DecompositionNode, depth int)
	visit = func(n *DecompositionNode, depth int) {
		indent := strings.Repeat("  ", depth+1)
		fmt.Fprintf(&b, "%sχ={%s} λ={%s} width=%d",
			indent,
			strings.Join(p.dec.H.VertexNames(n.Chi), ","),
			strings.Join(p.lambdaLabels(n), ","),
			n.Lambda.Len())
		if n.Weights != nil {
			total := 0.0
			for _, w := range n.Weights {
				total += w
			}
			fmt.Fprintf(&b, " fw=%.4g", total)
		}
		if p.stats != nil {
			fmt.Fprintf(&b, " est=%.4g", n.EstRows)
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			visit(c, depth+1)
		}
	}
	if p.dec.Root != nil {
		visit(p.dec.Root, 0)
	}
	// Kernel decisions live on the evaluator's completed tree (Complete
	// clones and may extend the decomposition), so they are reported from
	// NodeInfos rather than the visit above.
	if p.eval != nil {
		if infos := p.eval.NodeInfos(); len(infos) > 0 {
			fmt.Fprintf(&b, "  kernel selection (policy %s):\n", p.JoinKernel())
			for _, info := range infos {
				indent := strings.Repeat("  ", info.Depth+2)
				fmt.Fprintf(&b, "%s%s → %s\n", indent, info.Label, info.Kernel)
			}
		}
	}
	return b.String()
}

// LastTrace returns the trace of the plan's most recent traced execution
// (Execute under ContextWithTrace, or any execution of a WithTrace plan),
// or nil when no execution has been traced. Safe for concurrent use.
func (p *Plan) LastTrace() *Trace {
	return p.lastTrace.Load()
}

// ExplainAnalyze renders the EXPLAIN ANALYZE report: the Explain tree with,
// per decomposition node, the actual materialised cardinality of the most
// recent traced execution next to the planner's estimate and their q-error
// — the ground truth Explain alone cannot show — followed by the execution
// pass timings (semijoin up/down, enumeration) and any compile/race spans
// the trace holds. Reading it answers the post-mortem questions: which node
// the cost model mispriced, where the wall-clock went, and whether the race
// picked the right engine. Without a traced execution it falls back to
// Explain plus a pointer at how to get one.
func (p *Plan) ExplainAnalyze() string {
	tr := p.LastTrace()
	if tr == nil {
		return p.Explain() + "  analyze: no traced execution yet — execute under ContextWithTrace, or compile with WithTrace\n"
	}
	spans := tr.Spans()

	// Scope the per-node numbers to the most recent execution: the window
	// from just after the previous SpanExec through the last one (spans
	// complete in End order, so an execution's spans end before its
	// SpanExec does).
	prev, last := -1, -1
	execs := 0
	for i, s := range spans {
		if s.Name == obs.SpanExec {
			prev, last = last, i
			execs++
		}
	}
	window := spans
	if last >= 0 {
		window = spans[prev+1 : last+1]
	}

	nodeSpans := map[int]obs.Span{}
	shardCounts := map[int]int{}
	var passes []obs.Span
	var execSpan *obs.Span
	for _, s := range window {
		switch s.Name {
		case obs.SpanNode, obs.SpanNodeSharded:
			if s.Node >= 0 {
				nodeSpans[s.Node] = s
			}
		case obs.SpanShard:
			if s.Node >= 0 {
				shardCounts[s.Node]++
			}
		case obs.SpanSemijoinUp, obs.SpanSemijoinDown, obs.SpanEnumerate:
			passes = append(passes, s)
		case obs.SpanExec:
			s := s
			execSpan = &s
		}
	}

	var b strings.Builder
	b.WriteString(p.String())
	b.WriteString("\n")
	if execSpan != nil {
		fmt.Fprintf(&b, "  analyze: %dµs", execSpan.Micros)
		if execSpan.Rows >= 0 {
			fmt.Fprintf(&b, ", %d answer rows", execSpan.Rows)
		}
		if execs > 1 {
			fmt.Fprintf(&b, " (latest of %d traced executions)", execs)
		}
		b.WriteString("\n")
	}
	if p.eval != nil {
		for _, info := range p.eval.NodeInfos() {
			indent := strings.Repeat("  ", info.Depth+1)
			fmt.Fprintf(&b, "%s%s", indent, info.Label)
			if info.Kernel != "" {
				fmt.Fprintf(&b, " kernel=%s", info.Kernel)
			}
			s, ok := nodeSpans[info.ID]
			switch {
			case !ok:
				b.WriteString("  (no span in last traced execution)")
			case info.EstRows > 0:
				fmt.Fprintf(&b, "  est=%.4g actual=%d q-err=%.3g rows, %d joins, %dµs",
					info.EstRows, s.Rows, obs.QError(info.EstRows, s.Rows), s.Steps, s.Micros)
			default:
				fmt.Fprintf(&b, "  actual=%d rows (no estimate), %d joins, %dµs", s.Rows, s.Steps, s.Micros)
			}
			if n := shardCounts[info.ID]; n > 0 {
				fmt.Fprintf(&b, " across %d shards", n)
			}
			b.WriteString("\n")
		}
	}
	for _, s := range passes {
		fmt.Fprintf(&b, "  %s: %d steps, %dµs", passName(s.Name), s.Steps, s.Micros)
		if s.Rows >= 0 {
			fmt.Fprintf(&b, ", %d rows", s.Rows)
		}
		b.WriteString("\n")
	}
	for _, s := range spans {
		switch s.Name {
		case obs.SpanCompile, obs.SpanDecompose, obs.SpanRace:
			fmt.Fprintf(&b, "  %s: %dµs  %s\n", passName(s.Name), s.Micros, s.Label)
		}
	}
	return b.String()
}

// passName maps a span name to its report label.
func passName(name string) string {
	switch name {
	case obs.SpanSemijoinUp:
		return "semijoin up"
	case obs.SpanSemijoinDown:
		return "semijoin down"
	case obs.SpanEnumerate:
		return "enumerate"
	case obs.SpanCompile:
		return "compile"
	case obs.SpanDecompose:
		return "decompose"
	case obs.SpanRace:
		return "race entrant"
	default:
		return name
	}
}

// lambdaLabels renders a node's λ edges, each annotated with its fractional
// weight (when present) and its estimated cardinality (when statistics are
// attached), in ascending edge order.
func (p *Plan) lambdaLabels(n *DecompositionNode) []string {
	elems := n.Lambda.Elems() // ascending by construction
	labels := make([]string, 0, len(elems))
	for _, e := range elems {
		l := p.dec.H.EdgeName(e)
		if n.Weights != nil {
			if w, ok := n.Weights[e]; ok {
				l += fmt.Sprintf("·%.3g", w)
			}
		}
		if e < len(p.edgeRows) {
			l += fmt.Sprintf("[%.4g rows]", p.edgeRows[e])
		}
		labels = append(labels, l)
	}
	return labels
}
