package hypertree

import (
	"fmt"
	"strings"
)

// EstimatedCost returns the plan's total estimated evaluation cost under
// the statistics it was compiled with: the sum over decomposition nodes of
// the estimated cardinality of each node's materialised table (the AGM
// bound Π_{R∈λ} |R|^w, tightened by the per-column distinct counts). It is
// the quantity cost-based compilation minimises among same-width plans. 0
// means no cost model: the plan was compiled without WithStats/
// WithCostModel, or its strategy uses no decomposition.
func (p *Plan) EstimatedCost() float64 { return p.estCost }

// PlanStats returns the statistics snapshot the plan was compiled with, or
// nil when compilation was width-only.
func (p *Plan) PlanStats() *Stats { return p.stats }

// Explain renders the plan's per-node cost/width report: for every
// decomposition node its χ and λ labels (with fractional weights where
// present), the node width, and — when the plan was compiled with
// statistics — the relation cardinalities joined and the estimated
// cardinality of the node table. The header line summarises the plan, the
// ranking mode (cost-based or width-only) and the total estimated cost.
// Reading the report answers the planner questions: which relations landed
// in λ, what each node is expected to materialise, and why this plan beat
// its same-width rivals.
func (p *Plan) Explain() string {
	var b strings.Builder
	b.WriteString(p.String())
	switch {
	case p.dec == nil:
		fmt.Fprintf(&b, "\n  no decomposition: the %s strategy plans no λ-joins", strategyName(p.strategy))
		if p.strategy == StrategyAcyclic {
			b.WriteString(" (Yannakakis evaluates the join tree directly)")
		}
		b.WriteString("\n")
		return b.String()
	case p.stats == nil:
		b.WriteString("\n  ranking: width-only (no statistics; compile with WithStats/WithCostModel for cost-based plans)\n")
	default:
		fmt.Fprintf(&b, "\n  ranking: cost-based, estimated total cost %.4g\n  %s\n", p.estCost, p.stats)
	}
	var visit func(n *DecompositionNode, depth int)
	visit = func(n *DecompositionNode, depth int) {
		indent := strings.Repeat("  ", depth+1)
		fmt.Fprintf(&b, "%sχ={%s} λ={%s} width=%d",
			indent,
			strings.Join(p.dec.H.VertexNames(n.Chi), ","),
			strings.Join(p.lambdaLabels(n), ","),
			n.Lambda.Len())
		if n.Weights != nil {
			total := 0.0
			for _, w := range n.Weights {
				total += w
			}
			fmt.Fprintf(&b, " fw=%.4g", total)
		}
		if p.stats != nil {
			fmt.Fprintf(&b, " est=%.4g", n.EstRows)
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			visit(c, depth+1)
		}
	}
	if p.dec.Root != nil {
		visit(p.dec.Root, 0)
	}
	return b.String()
}

// lambdaLabels renders a node's λ edges, each annotated with its fractional
// weight (when present) and its estimated cardinality (when statistics are
// attached), in ascending edge order.
func (p *Plan) lambdaLabels(n *DecompositionNode) []string {
	elems := n.Lambda.Elems() // ascending by construction
	labels := make([]string, 0, len(elems))
	for _, e := range elems {
		l := p.dec.H.EdgeName(e)
		if n.Weights != nil {
			if w, ok := n.Weights[e]; ok {
				l += fmt.Sprintf("·%.3g", w)
			}
		}
		if e < len(p.edgeRows) {
			l += fmt.Sprintf("[%.4g rows]", p.edgeRows[e])
		}
		labels = append(labels, l)
	}
	return labels
}
