package hypertree

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"hypertree/internal/gen"
)

// The central safety property of cost-based planning: statistics choose
// among plans and join orders, never answers. Execute / ExecuteBoolean /
// ExecuteSharded with WithStats must agree with the width-only compile of
// the same query, on random acyclic and cyclic instances, across the exact
// k-decomp, greedy GHD and fractional decomposers and the auto race, over
// databases with skewed relation sizes (where the cost model actually
// reorders things).
func TestPropertyStatsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(525))
	ctx := context.Background()
	acyclicSeen, cyclicSeen := 0, 0
	for trial := 0; trial < 18; trial++ {
		var q *Query
		switch trial % 4 {
		case 0:
			q = gen.Cycle(3 + rng.Intn(4)) // cyclic
		case 1:
			q = gen.Path(2 + rng.Intn(4)) // acyclic
		case 2:
			q = gen.RandomCSP(rng, 4+rng.Intn(3), 7+rng.Intn(3), 3) // cyclic
		default:
			q = gen.RandomQuery(rng, 2+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(3))
		}
		if IsAcyclic(q) {
			acyclicSeen++
		} else {
			cyclicSeen++
		}
		// skewed sizes so the cost model genuinely reorders joins and covers
		db := gen.SkewedSizeDatabase(rng, q, 8+rng.Intn(40), 2+rng.Intn(6), 1+2*rng.Float64())

		for name, opts := range map[string][]CompileOption{
			"k-decomp": {WithStrategy(StrategyHypertree), WithDecomposer(KDecomposer())},
			"ghd":      {WithStrategy(StrategyHypertree), WithDecomposer(GreedyDecomposer())},
			"fhd":      {WithStrategy(StrategyHypertree), WithDecomposer(FractionalDecomposer())},
			"auto":     {WithStrategy(StrategyAuto), WithAutoStrategy()},
		} {
			plain, err := Compile(q, opts...)
			if err != nil {
				t.Fatalf("trial %d %s compile: %v", trial, name, err)
			}
			costed, err := Compile(q, append(opts[:len(opts):len(opts)], WithStats(db))...)
			if err != nil {
				t.Fatalf("trial %d %s compile with stats: %v", trial, name, err)
			}
			want, err := plain.Execute(ctx, db)
			if err != nil {
				t.Fatalf("trial %d %s execute: %v", trial, name, err)
			}
			got, err := costed.Execute(ctx, db)
			if err != nil {
				t.Fatalf("trial %d %s execute with stats: %v", trial, name, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d %s: stats changed answers: %d rows vs %d\nquery %s\nwidth-only %s\ncost-based %s",
					trial, name, got.Rows(), want.Rows(), q, plain.Explain(), costed.Explain())
			}
			wantBool, err := plain.ExecuteBoolean(ctx, db)
			if err != nil {
				t.Fatalf("trial %d %s boolean: %v", trial, name, err)
			}
			gotBool, err := costed.ExecuteBoolean(ctx, db)
			if err != nil {
				t.Fatalf("trial %d %s boolean with stats: %v", trial, name, err)
			}
			if gotBool != wantBool {
				t.Fatalf("trial %d %s: stats changed the Boolean verdict", trial, name)
			}
			// the sharded path must serve stats-ordered plans unchanged
			for _, shards := range []int{1, 3} {
				pdb, err := PartitionDatabase(db, shards, HashPartition)
				if err != nil {
					t.Fatal(err)
				}
				sh, err := costed.ExecuteSharded(ctx, pdb)
				if err != nil {
					t.Fatalf("trial %d %s sharded(%d) with stats: %v", trial, name, shards, err)
				}
				if !sh.Equal(want) {
					t.Fatalf("trial %d %s: sharded(%d) stats execution changed answers", trial, name, shards)
				}
			}
		}
	}
	if acyclicSeen == 0 || cyclicSeen == 0 {
		t.Fatalf("workload mix degenerate: %d acyclic, %d cyclic", acyclicSeen, cyclicSeen)
	}
}

// Non-Boolean heads must survive cost-based reordering too: the join
// ordering changes the intermediate tables, and the head projection is
// where a wrong column convention would surface.
func TestStatsEquivalenceWithHeads(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	for _, src := range []string{
		`ans(X, Z) :- r(X, Y), s(Y, Z), t(Z, X).`,
		`ans(A, C) :- e1(A, B), e2(B, C), e3(C, D), e4(D, A), cheap(A, B).`,
		`ans(X) :- r(X, Y), s(Y, Z).`,
	} {
		q := MustParseQuery(src)
		db := gen.SkewedSizeDatabase(rng, q, 60, 4, 2)
		for _, opts := range [][]CompileOption{
			{WithStrategy(StrategyAuto), WithAutoStrategy()},
			{WithStrategy(StrategyHypertree), WithDecomposer(GreedyDecomposer())},
		} {
			plain, err := Compile(q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			costed, err := Compile(q, append(opts[:len(opts):len(opts)], WithStats(db))...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.Execute(ctx, db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := costed.Execute(ctx, db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s: stats changed answers (%d vs %d rows)", src, got.Rows(), want.Rows())
			}
		}
	}
}

// On the cost-separation workload the cost-based auto race must pick a
// same-width plan of strictly lower estimated cost than the width-only
// race — the deterministic core of hdbench E25.
func TestCostBasedAutoBeatsWidthOnly(t *testing.T) {
	q := gen.CostSeparationQuery()
	db := gen.SkewedSizeDatabase(rand.New(rand.NewSource(25)), q, 2000, 250, 3)
	st := CollectStats(db)
	widthPlan, err := Compile(q, WithStrategy(StrategyHypertree), WithAutoStrategy(), WithStepBudget(200_000))
	if err != nil {
		t.Fatal(err)
	}
	costPlan, err := Compile(q, WithStrategy(StrategyHypertree), WithAutoStrategy(), WithStepBudget(200_000), WithCostModel(st))
	if err != nil {
		t.Fatal(err)
	}
	if widthPlan.Width() != costPlan.Width() {
		t.Fatalf("widths diverged: %d vs %d", widthPlan.Width(), costPlan.Width())
	}
	wCost := EstimateCost(q, widthPlan.Decomposition(), st)
	cCost := EstimateCost(q, costPlan.Decomposition(), st)
	if !(cCost < wCost) {
		t.Fatalf("cost-based plan estimated at %g, width-only at %g", cCost, wCost)
	}
	if costPlan.EstimatedCost() <= 0 {
		t.Fatal("cost-based plan reports no EstimatedCost")
	}
	if widthPlan.EstimatedCost() != 0 {
		t.Fatalf("width-only plan reports EstimatedCost %g, want 0", widthPlan.EstimatedCost())
	}
	if widthPlan.PlanStats() != nil || costPlan.PlanStats() != st {
		t.Fatal("PlanStats must echo exactly the compile-time snapshot")
	}
}

func TestStatsOptionValidation(t *testing.T) {
	q := MustParseQuery(`r(X, Y), s(Y, Z), t(Z, X).`)
	if _, err := Compile(q, WithStats(nil)); err == nil {
		t.Error("WithStats(nil) accepted")
	}
	if _, err := Compile(q, WithCostModel(nil)); err == nil {
		t.Error("WithCostModel(nil) accepted")
	}
	// WithCostModel wins over WithStats
	db := gen.RandomDatabase(rand.New(rand.NewSource(1)), q, 10, 4)
	st := CollectStats(db)
	other := NewDatabase()
	p, err := Compile(q, WithStrategy(StrategyHypertree), WithStats(other), WithCostModel(st))
	if err != nil {
		t.Fatal(err)
	}
	if p.PlanStats() != st {
		t.Error("WithCostModel did not take precedence over WithStats")
	}
}

func TestExplainReports(t *testing.T) {
	q := MustParseQuery(`r(X, Y), s(Y, Z), t(Z, X).`)
	db := gen.RandomDatabase(rand.New(rand.NewSource(2)), q, 12, 4)

	plain, err := Compile(q, WithStrategy(StrategyHypertree))
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.Explain(); !strings.Contains(got, "width-only") || !strings.Contains(got, "λ=") {
		t.Errorf("width-only Explain:\n%s", got)
	}

	costed, err := Compile(q, WithStrategy(StrategyHypertree), WithStats(db))
	if err != nil {
		t.Fatal(err)
	}
	got := costed.Explain()
	for _, want := range []string{"cost-based", "est=", "rows]", "estimated total cost"} {
		if !strings.Contains(got, want) {
			t.Errorf("cost-based Explain misses %q:\n%s", want, got)
		}
	}

	// fractional plans annotate λ weights
	frac, err := Compile(q, WithStrategy(StrategyHypertree), WithDecomposer(FractionalDecomposer()), WithStats(db))
	if err != nil {
		t.Fatal(err)
	}
	if got := frac.Explain(); !strings.Contains(got, "fw=") || !strings.Contains(got, "·") {
		t.Errorf("fractional Explain misses weights:\n%s", got)
	}

	// strategies without a decomposition still explain themselves
	naive, err := Compile(q, WithStrategy(StrategyNaive))
	if err != nil {
		t.Fatal(err)
	}
	if got := naive.Explain(); !strings.Contains(got, "no decomposition") {
		t.Errorf("naive Explain:\n%s", got)
	}
	acyc, err := Compile(MustParseQuery(`r(X, Y), s(Y, Z).`), WithStrategy(StrategyAcyclic))
	if err != nil {
		t.Fatal(err)
	}
	if got := acyc.Explain(); !strings.Contains(got, "Yannakakis") {
		t.Errorf("acyclic Explain:\n%s", got)
	}
}

// Plans compiled under different statistics snapshots must occupy distinct
// cache slots: the snapshot fingerprint participates in the key.
func TestPlanCacheKeysOnStats(t *testing.T) {
	ctx := context.Background()
	q := gen.CostSeparationQuery()
	db := gen.SkewedSizeDatabase(rand.New(rand.NewSource(3)), q, 200, 30, 2)
	st := CollectStats(db)

	cache := NewPlanCache(8)
	base := []CompileOption{WithStrategy(StrategyHypertree), WithDecomposer(GreedyDecomposer())}
	if _, err := cache.Compile(ctx, q, base...); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Compile(ctx, q, append(base[:2:2], WithCostModel(st))...); err != nil {
		t.Fatal(err)
	}
	if m := cache.Metrics(); m.Hits != 0 || m.Misses != 2 {
		t.Fatalf("width-only and cost-based compiles shared a slot: %+v", m)
	}
	// same snapshot again: a hit
	if _, err := cache.Compile(ctx, q, append(base[:2:2], WithCostModel(st))...); err != nil {
		t.Fatal(err)
	}
	if m := cache.Metrics(); m.Hits != 1 {
		t.Fatalf("identical snapshot missed: %+v", m)
	}
	// a drifted database: different fingerprint, different slot
	db.AddFact("big", "zz1", "zz2")
	st2 := CollectStats(db)
	if st.Fingerprint() == st2.Fingerprint() {
		t.Fatal("fingerprint ignored a cardinality change")
	}
	if _, err := cache.Compile(ctx, q, append(base[:2:2], WithCostModel(st2))...); err != nil {
		t.Fatal(err)
	}
	if m := cache.Metrics(); m.Misses != 3 {
		t.Fatalf("drifted snapshot served from stale slot: %+v", m)
	}
}

// The deprecated Stats wrapper must keep reporting exactly the Metrics
// counters.
func TestPlanCacheStatsWrapsMetrics(t *testing.T) {
	ctx := context.Background()
	q := MustParseQuery(`r(X, Y), s(Y, Z), t(Z, X).`)
	cache := NewPlanCache(4)
	for i := 0; i < 3; i++ {
		if _, err := cache.Compile(ctx, q, WithStrategy(StrategyHypertree)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := cache.Stats()
	m := cache.Metrics()
	if hits != m.Hits || misses != m.Misses {
		t.Fatalf("Stats()=(%d,%d) disagrees with Metrics()=%+v", hits, misses, m)
	}
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}
}
