// Command smokecheck asserts the serve-smoke acceptance conditions. Two
// independent checks, either or both per invocation:
//
//   - a load.json argument checks the hdload report: every cell served with
//     zero request errors, and the PlanCache hit rate over the burst was
//     above zero (the warm-cache serving path actually amortised compiles).
//     When the report carries a churn section (hdload -churn), the
//     statistics feedback loop is asserted too: at least one refresh
//     landed, the live fingerprint moved, and the post-refresh median
//     q-error dropped back below the stale pre-refresh median;
//   - -metrics URL scrapes a live /admin/metrics endpoint and fails on
//     malformed Prometheus text exposition (bad sample lines, samples
//     without a TYPE header, non-cumulative histogram buckets, malformed
//     exemplar annotations) or on missing required series — the request
//     counters, the statistics-refresh and trace-sampling counters, and the
//     per-stage (compile, execute) latency histograms. -want-exemplars
//     additionally requires at least one histogram bucket to carry an
//     OpenMetrics exemplar annotation (servers run with -trace-sample).
//
// Used by scripts/serve_smoke.sh.
//
// Usage: smokecheck [-metrics URL] [-want-exemplars] [load.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// cell is the slice of an hdload cell report smokecheck asserts on.
type cell struct {
	Phase        string  `json:"phase"`
	Workers      int     `json:"workers"`
	Skew         float64 `json:"skew"`
	Mix          string  `json:"mix"`
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Coalesced    uint64  `json:"coalesced"`
}

// churn is the slice of the hdload -churn summary smokecheck asserts on.
type churn struct {
	FactsAdded         int     `json:"facts_added"`
	PreFingerprint     string  `json:"pre_fingerprint"`
	PostFingerprint    string  `json:"post_fingerprint"`
	Refreshes          uint64  `json:"refreshes"`
	RefreshTimedOut    bool    `json:"refresh_timed_out"`
	BaselineMedianQ    float64 `json:"baseline_median_q"`
	PreRefreshMedianQ  float64 `json:"pre_refresh_median_q"`
	PostRefreshMedianQ float64 `json:"post_refresh_median_q"`
}

// report mirrors the hdload JSON envelope.
type report struct {
	Cells []cell `json:"cells"`
	Churn *churn `json:"churn"`
}

func main() {
	metricsURL := flag.String("metrics", "", "scrape this /admin/metrics URL and validate the Prometheus exposition")
	wantExemplars := flag.Bool("want-exemplars", false, "require at least one histogram-bucket exemplar annotation in the scrape")
	flag.Parse()
	if *metricsURL == "" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: smokecheck [-metrics URL] [-want-exemplars] [load.json]")
		os.Exit(2)
	}
	ok := true
	if *metricsURL != "" {
		ok = checkMetrics(*metricsURL, *wantExemplars) && ok
	}
	if flag.NArg() == 1 {
		ok = checkLoadReport(flag.Arg(0)) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

// checkLoadReport asserts the hdload cells — requests served, zero errors,
// warm cache — and, when present, the churn summary of the statistics
// feedback loop.
func checkLoadReport(path string) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		return false
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		return false
	}
	if len(r.Cells) == 0 {
		fmt.Fprintln(os.Stderr, "smokecheck: no cells in report")
		return false
	}
	ok := true
	for _, c := range r.Cells {
		tag := c.Mix
		if c.Phase != "" {
			tag = c.Phase + "/" + c.Mix
		}
		switch {
		case c.Requests == 0:
			fmt.Fprintf(os.Stderr, "smokecheck: cell mix=%s skew=%g workers=%d served no requests\n", tag, c.Skew, c.Workers)
			ok = false
		case c.Errors > 0:
			fmt.Fprintf(os.Stderr, "smokecheck: cell mix=%s skew=%g workers=%d had %d non-2xx responses\n", tag, c.Skew, c.Workers, c.Errors)
			ok = false
		case c.CacheHitRate <= 0:
			fmt.Fprintf(os.Stderr, "smokecheck: cell mix=%s skew=%g workers=%d had zero PlanCache hit rate\n", tag, c.Skew, c.Workers)
			ok = false
		default:
			fmt.Printf("smokecheck: mix=%s skew=%g workers=%d ok — %d requests, 0 errors, hit rate %.1f%%, %d coalesced\n",
				tag, c.Skew, c.Workers, c.Requests, 100*c.CacheHitRate, c.Coalesced)
		}
	}
	if r.Churn != nil {
		ok = checkChurn(r.Churn) && ok
	}
	return ok
}

// checkChurn asserts the statistics feedback loop closed during an hdload
// -churn run: facts landed, a refresh was installed without a restart, the
// live fingerprint moved, the stale statistics showed an inflated median
// q-error, and the fresh statistics brought the median back down.
func checkChurn(c *churn) bool {
	ok := true
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "smokecheck: churn: "+format+"\n", args...)
		ok = false
	}
	if c.FactsAdded == 0 {
		fail("ingest added no facts")
	}
	if c.RefreshTimedOut || c.Refreshes == 0 {
		fail("no statistics refresh landed (refreshes=%d, timed_out=%v)", c.Refreshes, c.RefreshTimedOut)
	}
	if c.PostFingerprint == "" || c.PostFingerprint == c.PreFingerprint {
		fail("live fingerprint did not move (%q → %q)", c.PreFingerprint, c.PostFingerprint)
	}
	if c.PreRefreshMedianQ <= c.BaselineMedianQ {
		fail("stale median q-error %.1f did not rise above baseline %.1f", c.PreRefreshMedianQ, c.BaselineMedianQ)
	}
	if c.PostRefreshMedianQ >= c.PreRefreshMedianQ {
		fail("post-refresh median q-error %.1f did not drop below stale %.1f", c.PostRefreshMedianQ, c.PreRefreshMedianQ)
	}
	if ok {
		fmt.Printf("smokecheck: churn ok — %d facts, %d refresh(es), fingerprint %s → %s, median q %.1f → %.1f → %.1f\n",
			c.FactsAdded, c.Refreshes, c.PreFingerprint, c.PostFingerprint,
			c.BaselineMedianQ, c.PreRefreshMedianQ, c.PostRefreshMedianQ)
	}
	return ok
}

// promSample matches one exposition sample: name, optional label set, value.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_]+="[^"]*"(?:,[a-zA-Z_]+="[^"]*")*\})? (\S+)$`)

// promExemplar matches the OpenMetrics exemplar annotation a histogram
// bucket may carry after its value: `# {trace_id="…"} value timestamp`.
var promExemplar = regexp.MustCompile(`^\{trace_id="[0-9a-f]{32}"\} (\S+) (\S+)$`)

// requiredSeries are the exact samples a healthy post-burst scrape must
// expose (values vary; presence is asserted by prefix match on name+labels).
var requiredSeries = []string{
	"hdserve_requests_total",
	"hdserve_executions_total",
	"hdserve_plan_cache_hits_total",
	"hdserve_plan_cache_misses_total",
	"hdserve_columnar_cache_hits_total",
	"hdserve_columnar_cache_misses_total",
	"hdserve_stats_refresh_total",
	"hdserve_trace_sampled_total",
	"hdserve_trace_sample_every",
	"hdserve_spans_exported_total",
	`hdserve_request_duration_seconds_count{route="/query"}`,
	`hdserve_stage_duration_seconds_count{stage="compile"}`,
	`hdserve_stage_duration_seconds_count{stage="execute"}`,
	`hdserve_stage_duration_seconds_bucket{stage="execute",le="+Inf"}`,
}

// checkMetrics scrapes url and validates the Prometheus text exposition:
// every sample line parses (including bucket exemplar annotations), every
// sample's family has a # TYPE header, histogram buckets are cumulative,
// and the required series are present. With wantExemplars, at least one
// bucket must carry an exemplar.
func checkMetrics(url string, wantExemplars bool) bool {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "smokecheck: %s: status %d\n", url, resp.StatusCode)
		return false
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		return false
	}
	body := string(raw)

	ok := true
	typed := map[string]bool{}        // families with a # TYPE header
	lastBucket := map[string]uint64{} // histogram series -> last cumulative value
	samples := map[string]bool{}      // "name{labels}" -> seen
	exemplars := 0
	for n, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) == 4 {
				typed[f[2]] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Peel an exemplar annotation off a bucket line before matching the
		// sample itself.
		sample := line
		if at := strings.Index(line, " # "); at >= 0 {
			sample = line[:at]
			ex := line[at+3:]
			m := promExemplar.FindStringSubmatch(ex)
			if m == nil {
				fmt.Fprintf(os.Stderr, "smokecheck: malformed exemplar on line %d: %q\n", n+1, ex)
				ok = false
				continue
			}
			for _, v := range m[1:] {
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					fmt.Fprintf(os.Stderr, "smokecheck: non-numeric exemplar field %q on line %d\n", v, n+1)
					ok = false
				}
			}
			if !strings.Contains(sample, "_bucket") {
				fmt.Fprintf(os.Stderr, "smokecheck: exemplar on non-bucket line %d: %q\n", n+1, line)
				ok = false
			}
			exemplars++
		}
		m := promSample.FindStringSubmatch(sample)
		if m == nil {
			fmt.Fprintf(os.Stderr, "smokecheck: malformed exposition line %d: %q\n", n+1, line)
			ok = false
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, found := strings.CutSuffix(name, suffix); found && typed[f] {
				family = f
			}
		}
		if !typed[family] {
			fmt.Fprintf(os.Stderr, "smokecheck: sample %q has no # TYPE header\n", name)
			ok = false
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			fmt.Fprintf(os.Stderr, "smokecheck: sample %q has non-numeric value %q\n", name, value)
			ok = false
		}
		samples[name+labels] = true
		// Histogram buckets must be cumulative per series (same labels
		// minus `le`; the exposition orders them ascending by bound).
		if strings.HasSuffix(name, "_bucket") {
			series := name + regexp.MustCompile(`,?le="[^"]*"`).ReplaceAllString(labels, "")
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "smokecheck: bucket %q has non-integer value %q\n", line, value)
				ok = false
				continue
			}
			if prev, seen := lastBucket[series]; seen && v < prev {
				fmt.Fprintf(os.Stderr, "smokecheck: non-cumulative buckets in %q: %d after %d\n", series, v, prev)
				ok = false
			}
			lastBucket[series] = v
		}
	}
	for _, want := range requiredSeries {
		if !samples[want] {
			fmt.Fprintf(os.Stderr, "smokecheck: exposition is missing required series %q\n", want)
			ok = false
		}
	}
	if wantExemplars && exemplars == 0 {
		fmt.Fprintln(os.Stderr, "smokecheck: no histogram-bucket exemplar annotations in the scrape")
		ok = false
	}
	if ok {
		fmt.Printf("smokecheck: %s ok — %d samples, %d histogram series, %d exemplars, all required series present\n",
			url, len(samples), len(lastBucket), exemplars)
	}
	return ok
}
