// Command smokecheck asserts the serve-smoke acceptance conditions over an
// hdload JSON report: every cell served with zero request errors, and the
// PlanCache hit rate over the burst was above zero (the warm-cache serving
// path actually amortised compiles). Used by scripts/serve_smoke.sh.
//
// Usage: smokecheck load.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// cell is the slice of an hdload cell report smokecheck asserts on.
type cell struct {
	Workers      int     `json:"workers"`
	Skew         float64 `json:"skew"`
	Mix          string  `json:"mix"`
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Coalesced    uint64  `json:"coalesced"`
}

// report mirrors the hdload JSON envelope.
type report struct {
	Cells []cell `json:"cells"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: smokecheck load.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		os.Exit(1)
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		os.Exit(1)
	}
	if len(r.Cells) == 0 {
		fmt.Fprintln(os.Stderr, "smokecheck: no cells in report")
		os.Exit(1)
	}
	failed := false
	for _, c := range r.Cells {
		switch {
		case c.Requests == 0:
			fmt.Fprintf(os.Stderr, "smokecheck: cell mix=%s skew=%g workers=%d served no requests\n", c.Mix, c.Skew, c.Workers)
			failed = true
		case c.Errors > 0:
			fmt.Fprintf(os.Stderr, "smokecheck: cell mix=%s skew=%g workers=%d had %d non-2xx responses\n", c.Mix, c.Skew, c.Workers, c.Errors)
			failed = true
		case c.CacheHitRate <= 0:
			fmt.Fprintf(os.Stderr, "smokecheck: cell mix=%s skew=%g workers=%d had zero PlanCache hit rate\n", c.Mix, c.Skew, c.Workers)
			failed = true
		default:
			fmt.Printf("smokecheck: mix=%s skew=%g workers=%d ok — %d requests, 0 errors, hit rate %.1f%%, %d coalesced\n",
				c.Mix, c.Skew, c.Workers, c.Requests, 100*c.CacheHitRate, c.Coalesced)
		}
	}
	if failed {
		os.Exit(1)
	}
}
