// Command smokecheck asserts the serve-smoke acceptance conditions. Two
// independent checks, either or both per invocation:
//
//   - a load.json argument checks the hdload report: every cell served with
//     zero request errors, and the PlanCache hit rate over the burst was
//     above zero (the warm-cache serving path actually amortised compiles);
//   - -metrics URL scrapes a live /admin/metrics endpoint and fails on
//     malformed Prometheus text exposition (bad sample lines, samples
//     without a TYPE header, non-cumulative histogram buckets) or on
//     missing required series — the request counters and the per-stage
//     (compile, execute) latency histograms.
//
// Used by scripts/serve_smoke.sh.
//
// Usage: smokecheck [-metrics URL] [load.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// cell is the slice of an hdload cell report smokecheck asserts on.
type cell struct {
	Workers      int     `json:"workers"`
	Skew         float64 `json:"skew"`
	Mix          string  `json:"mix"`
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Coalesced    uint64  `json:"coalesced"`
}

// report mirrors the hdload JSON envelope.
type report struct {
	Cells []cell `json:"cells"`
}

func main() {
	metricsURL := flag.String("metrics", "", "scrape this /admin/metrics URL and validate the Prometheus exposition")
	flag.Parse()
	if *metricsURL == "" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: smokecheck [-metrics URL] [load.json]")
		os.Exit(2)
	}
	ok := true
	if *metricsURL != "" {
		ok = checkMetrics(*metricsURL) && ok
	}
	if flag.NArg() == 1 {
		ok = checkLoadReport(flag.Arg(0)) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

// checkLoadReport asserts the hdload cells: requests served, zero errors,
// warm cache.
func checkLoadReport(path string) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		return false
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		return false
	}
	if len(r.Cells) == 0 {
		fmt.Fprintln(os.Stderr, "smokecheck: no cells in report")
		return false
	}
	ok := true
	for _, c := range r.Cells {
		switch {
		case c.Requests == 0:
			fmt.Fprintf(os.Stderr, "smokecheck: cell mix=%s skew=%g workers=%d served no requests\n", c.Mix, c.Skew, c.Workers)
			ok = false
		case c.Errors > 0:
			fmt.Fprintf(os.Stderr, "smokecheck: cell mix=%s skew=%g workers=%d had %d non-2xx responses\n", c.Mix, c.Skew, c.Workers, c.Errors)
			ok = false
		case c.CacheHitRate <= 0:
			fmt.Fprintf(os.Stderr, "smokecheck: cell mix=%s skew=%g workers=%d had zero PlanCache hit rate\n", c.Mix, c.Skew, c.Workers)
			ok = false
		default:
			fmt.Printf("smokecheck: mix=%s skew=%g workers=%d ok — %d requests, 0 errors, hit rate %.1f%%, %d coalesced\n",
				c.Mix, c.Skew, c.Workers, c.Requests, 100*c.CacheHitRate, c.Coalesced)
		}
	}
	return ok
}

// promSample matches one exposition sample: name, optional label set, value.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_]+="[^"]*"(?:,[a-zA-Z_]+="[^"]*")*\})? (\S+)$`)

// requiredSeries are the exact samples a healthy post-burst scrape must
// expose (values vary; presence is asserted by prefix match on name+labels).
var requiredSeries = []string{
	"hdserve_requests_total",
	"hdserve_executions_total",
	"hdserve_plan_cache_hits_total",
	"hdserve_plan_cache_misses_total",
	`hdserve_request_duration_seconds_count{route="/query"}`,
	`hdserve_stage_duration_seconds_count{stage="compile"}`,
	`hdserve_stage_duration_seconds_count{stage="execute"}`,
	`hdserve_stage_duration_seconds_bucket{stage="execute",le="+Inf"}`,
}

// checkMetrics scrapes url and validates the Prometheus text exposition:
// every sample line parses, every sample's family has a # TYPE header,
// histogram buckets are cumulative, and the required series are present.
func checkMetrics(url string) bool {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "smokecheck: %s: status %d\n", url, resp.StatusCode)
		return false
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		return false
	}
	body := string(raw)

	ok := true
	typed := map[string]bool{}        // families with a # TYPE header
	lastBucket := map[string]uint64{} // histogram series -> last cumulative value
	samples := map[string]bool{}      // "name{labels}" -> seen
	for n, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) == 4 {
				typed[f[2]] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			fmt.Fprintf(os.Stderr, "smokecheck: malformed exposition line %d: %q\n", n+1, line)
			ok = false
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, found := strings.CutSuffix(name, suffix); found && typed[f] {
				family = f
			}
		}
		if !typed[family] {
			fmt.Fprintf(os.Stderr, "smokecheck: sample %q has no # TYPE header\n", name)
			ok = false
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			fmt.Fprintf(os.Stderr, "smokecheck: sample %q has non-numeric value %q\n", name, value)
			ok = false
		}
		samples[name+labels] = true
		// Histogram buckets must be cumulative per series (same labels
		// minus `le`; the exposition orders them ascending by bound).
		if strings.HasSuffix(name, "_bucket") {
			series := name + regexp.MustCompile(`,?le="[^"]*"`).ReplaceAllString(labels, "")
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "smokecheck: bucket %q has non-integer value %q\n", line, value)
				ok = false
				continue
			}
			if prev, seen := lastBucket[series]; seen && v < prev {
				fmt.Fprintf(os.Stderr, "smokecheck: non-cumulative buckets in %q: %d after %d\n", series, v, prev)
				ok = false
			}
			lastBucket[series] = v
		}
	}
	for _, want := range requiredSeries {
		if !samples[want] {
			fmt.Fprintf(os.Stderr, "smokecheck: exposition is missing required series %q\n", want)
			ok = false
		}
	}
	if ok {
		fmt.Printf("smokecheck: %s ok — %d samples, %d histogram series, all required series present\n",
			url, len(samples), len(lastBucket))
	}
	return ok
}
