#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the serving path, in two acts.
#
# Act 1 (burst): boot hdserve on an ephemeral port over the generated
# serving database with always-on 1-in-2 trace sampling and OTLP/JSON file
# export, fire a short hdload burst at it, scrape /admin/metrics and
# validate the Prometheus exposition (including the sampling counters and at
# least one histogram-bucket exemplar annotation), check the OTel export
# file is non-empty valid JSON, and fail if any request came back non-2xx or
# the PlanCache hit rate over the burst was zero. The server runs with
# -slowquery-ms 1 so the slow-query JSON log is exercised too.
#
# Act 2 (churn): boot a second hdserve with the q-error feedback trigger
# armed, run hdload -churn against it — baseline load, skewed ingest into
# r4 via /admin/ingest, churn load whose sampled executions record inflated
# q-errors against the stale statistics, triggered refresh, settle load —
# and assert the loop closed: at least one refresh, a moved statistics
# fingerprint, and the median q-error back down, all without a restart.
#
# Exercised by `make serve-smoke` and CI.
set -eu

workdir="$(mktemp -d)"
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

echo "serve-smoke: building hdserve and hdload"
go build -o "$workdir/hdserve" ./cmd/hdserve
go build -o "$workdir/hdload" ./cmd/hdload

# wait_port <portfile>: block until hdserve writes its bound address.
wait_port() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: hdserve never came up" >&2
            cat "$workdir/hdserve.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# ---- Act 1: burst, sampling, exemplars, OTel export ----

"$workdir/hdserve" -addr 127.0.0.1:0 -gen-rows 500 -gen-domain 200 \
    -slowquery-ms 1 -trace-sample 2 -otel-file "$workdir/otel.jsonl" \
    -portfile "$workdir/port" 2> "$workdir/hdserve.log" &
server_pid=$!

wait_port "$workdir/port"
addr="$(cat "$workdir/port")"
echo "serve-smoke: hdserve on $addr (1-in-2 sampling, OTel file export)"

"$workdir/hdload" -addr "$addr" -duration 5s -workers 4 -skew 1.2 \
    -mix full -timeout-ms 10000 -json "$workdir/load.json"

# Scrape the live Prometheus endpoint (before the drain) and validate the
# exposition plus the hdload report: zero request errors, a non-zero
# PlanCache hit rate, well-formed samples, the sampling/refresh counter
# series, at least one bucket exemplar, and the per-stage histograms.
go run ./scripts/smokecheck -metrics "http://$addr/admin/metrics" \
    -want-exemplars "$workdir/load.json"

# The OTel export file must hold newline-delimited OTLP/JSON payloads.
if [ ! -s "$workdir/otel.jsonl" ]; then
    echo "serve-smoke: OTel export file is empty" >&2
    exit 1
fi
if ! head -1 "$workdir/otel.jsonl" | grep -q '"resourceSpans"'; then
    echo "serve-smoke: OTel export file is not OTLP/JSON" >&2
    head -1 "$workdir/otel.jsonl" >&2
    exit 1
fi
echo "serve-smoke: $(wc -l < "$workdir/otel.jsonl") OTLP/JSON trace payloads exported"

# Graceful drain: SIGTERM must exit cleanly (final metrics on stderr).
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
    echo "serve-smoke: hdserve did not drain cleanly on SIGTERM" >&2
    cat "$workdir/hdserve.log" >&2
    exit 1
fi
server_pid=""
echo "serve-smoke: clean SIGTERM drain"
tail -1 "$workdir/hdserve.log"

# With -slowquery-ms 1 at least some of the burst must have crossed the
# threshold and been logged as JSON lines ({"ts":...,"query":...}).
slow=$(grep -c '^{"ts":' "$workdir/hdserve.log" || true)
if [ "$slow" -eq 0 ]; then
    echo "serve-smoke: no slow-query JSON lines in hdserve.log" >&2
    exit 1
fi
echo "serve-smoke: $slow slow-query log lines"

# ---- Act 2: churn → q-error spike → triggered refresh → recovery ----
#
# The cycle mix keeps the workload to cycle4, whose decomposition carries a
# single-relation node (λ{r4}) with a near-perfect baseline estimate — so
# skewing r4 moves that node's median q-error by exactly the growth factor
# (~1400× here), far above the 1000 threshold, while the worst steady-state
# node stays well below it.

rm -f "$workdir/port"
"$workdir/hdserve" -addr 127.0.0.1:0 -gen-rows 100 -gen-domain 500 -gen-seed 7 \
    -trace-sample 2 -qerror-threshold 1000 -qerror-window 4 -refresh-cooldown 2s \
    -portfile "$workdir/port" 2> "$workdir/hdserve-churn.log" &
server_pid=$!

wait_port "$workdir/port"
addr="$(cat "$workdir/port")"
echo "serve-smoke: churn hdserve on $addr (q-error threshold 1000)"

"$workdir/hdload" -addr "$addr" -churn -duration 2s -workers 4 -skew 0 \
    -mix cycle -churn-rel r4 -churn-facts 200000 -churn-domain 500 \
    -churn-wait 20s -timeout-ms 10000 -json "$workdir/churn.json"

# The scrape must now show a live refresh; the churn report must show the
# feedback loop closed (refresh landed, fingerprint moved, median dropped).
go run ./scripts/smokecheck -metrics "http://$addr/admin/metrics" \
    -want-exemplars "$workdir/churn.json"
refreshes=$(curl -s "http://$addr/admin/metrics" | awk '$1 == "hdserve_stats_refresh_total" {print $2}')
if [ "${refreshes:-0}" -lt 1 ]; then
    echo "serve-smoke: hdserve_stats_refresh_total is ${refreshes:-missing}, want >= 1" >&2
    exit 1
fi
echo "serve-smoke: hdserve_stats_refresh_total=$refreshes"

kill -TERM "$server_pid"
if ! wait "$server_pid"; then
    echo "serve-smoke: churn hdserve did not drain cleanly on SIGTERM" >&2
    cat "$workdir/hdserve-churn.log" >&2
    exit 1
fi
server_pid=""
echo "serve-smoke: churn drain clean — all checks passed"
