#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the serving path: boot hdserve on an
# ephemeral port over the generated serving database, fire a short hdload
# burst at it, scrape /admin/metrics and validate the Prometheus exposition,
# and fail if any request came back non-2xx or the PlanCache hit rate over
# the burst was zero. The server runs with -slowquery-ms 1 so the slow-query
# JSON log is exercised too. Exercised by `make serve-smoke` and CI.
set -eu

workdir="$(mktemp -d)"
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

echo "serve-smoke: building hdserve and hdload"
go build -o "$workdir/hdserve" ./cmd/hdserve
go build -o "$workdir/hdload" ./cmd/hdload

"$workdir/hdserve" -addr 127.0.0.1:0 -gen-rows 500 -gen-domain 200 \
    -slowquery-ms 1 -portfile "$workdir/port" 2> "$workdir/hdserve.log" &
server_pid=$!

# Wait for the portfile (hdserve writes it once the listener is up).
i=0
while [ ! -s "$workdir/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: hdserve never came up" >&2
        cat "$workdir/hdserve.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="$(cat "$workdir/port")"
echo "serve-smoke: hdserve on $addr"

"$workdir/hdload" -addr "$addr" -duration 5s -workers 4 -skew 1.2 \
    -mix full -timeout-ms 10000 -json "$workdir/load.json"

# Scrape the live Prometheus endpoint (before the drain) and validate the
# exposition plus the hdload report: zero request errors, a non-zero
# PlanCache hit rate, well-formed samples, and the per-stage histograms.
go run ./scripts/smokecheck -metrics "http://$addr/admin/metrics" \
    "$workdir/load.json"

# Graceful drain: SIGTERM must exit cleanly (final metrics on stderr).
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
    echo "serve-smoke: hdserve did not drain cleanly on SIGTERM" >&2
    cat "$workdir/hdserve.log" >&2
    exit 1
fi
echo "serve-smoke: clean SIGTERM drain"
tail -1 "$workdir/hdserve.log"

# With -slowquery-ms 1 at least some of the burst must have crossed the
# threshold and been logged as JSON lines ({"ts":...,"query":...}).
slow=$(grep -c '^{"ts":' "$workdir/hdserve.log" || true)
if [ "$slow" -eq 0 ]; then
    echo "serve-smoke: no slow-query JSON lines in hdserve.log" >&2
    exit 1
fi
echo "serve-smoke: $slow slow-query log lines"
