package hypertree

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"hypertree/internal/gen"
)

// partitionings returns pdb views of db at shard counts 1, 2 and 7, under
// both placement strategies.
func partitionings(t *testing.T, db *Database) map[string]*PartitionedDB {
	t.Helper()
	out := map[string]*PartitionedDB{}
	for _, s := range []PartitionStrategy{HashPartition, RoundRobinPartition} {
		for _, n := range []int{1, 2, 7} {
			p, err := PartitionDatabase(db, n, s)
			if err != nil {
				t.Fatal(err)
			}
			out[s.String()+"/"+string(rune('0'+n))] = p
		}
	}
	return out
}

// The cross-path property: ExecuteSharded ≡ Execute on random acyclic and
// cyclic queries, for the exact k-decomp, the greedy GHD and the
// fractional decomposers, across shard counts 1, 2 and 7 and both
// strategies — fhd plans evaluate over their integral support sets, so the
// sharded fragment-and-replicate path must serve them unchanged.
func TestPropertyShardedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	ctx := context.Background()
	acyclicSeen, cyclicSeen := 0, 0
	for trial := 0; trial < 30; trial++ {
		var q *Query
		switch trial % 4 {
		case 0:
			q = gen.Cycle(3 + rng.Intn(5)) // cyclic
		case 1:
			q = gen.Path(2 + rng.Intn(4)) // acyclic
		case 2:
			q = gen.RandomCSP(rng, 4+rng.Intn(3), 7+rng.Intn(4), 3) // cyclic
		default:
			q = gen.RandomQuery(rng, 2+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(3))
		}
		if IsAcyclic(q) {
			acyclicSeen++
		} else {
			cyclicSeen++
		}
		db := gen.RandomDatabase(rng, q, 1+rng.Intn(25), 2+rng.Intn(5))

		for name, opt := range map[string]CompileOption{
			"k-decomp": WithDecomposer(KDecomposer()),
			"ghd":      WithDecomposer(GreedyDecomposer()),
			"fhd":      WithDecomposer(FractionalDecomposer()),
		} {
			// rotate the decomposers through both join kernels so the
			// leapfrog scatter path sees the same shard-count and
			// empty-shard coverage as the chain
			kernel := JoinKernelChain
			if trial%2 == 1 {
				kernel = JoinKernelLeapfrog
			}
			name = name + "/" + string(kernel)
			plan, err := Compile(q, WithStrategy(StrategyHypertree), opt, WithJoinKernel(kernel))
			if err != nil {
				t.Fatalf("trial %d %s compile: %v", trial, name, err)
			}
			want, err := plan.Execute(ctx, db)
			if err != nil {
				t.Fatalf("trial %d %s execute: %v", trial, name, err)
			}
			wantBool, err := plan.ExecuteBoolean(ctx, db)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			for pname, pdb := range partitionings(t, db) {
				got, err := plan.ExecuteSharded(ctx, pdb)
				if err != nil {
					t.Fatalf("trial %d %s %s: %v", trial, name, pname, err)
				}
				if !got.Equal(want) {
					t.Fatalf("trial %d: %s sharded(%s) table disagrees on %s", trial, name, pname, q)
				}
				if got.StringWith(db, q.VarName) != want.StringWith(db, q.VarName) {
					t.Fatalf("trial %d: %s sharded(%s) rendering disagrees on %s", trial, name, pname, q)
				}
				okS, err := plan.ExecuteBooleanSharded(ctx, pdb)
				if err != nil {
					t.Fatalf("trial %d %s %s boolean: %v", trial, name, pname, err)
				}
				if okS != wantBool {
					t.Fatalf("trial %d: %s sharded(%s) boolean disagrees on %s", trial, name, pname, q)
				}
			}
		}
	}
	if acyclicSeen == 0 || cyclicSeen == 0 {
		t.Fatalf("trial mix degenerate: %d acyclic, %d cyclic", acyclicSeen, cyclicSeen)
	}
}

// Head projections must survive sharding too.
func TestPropertyShardedEquivalenceWithHeads(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	ctx := context.Background()
	for trial := 0; trial < 15; trial++ {
		base := gen.RandomQuery(rng, 3+rng.Intn(3), 2+rng.Intn(3), 2)
		v := base.VarName(rng.Intn(base.NumVars()))
		q := MustParseQuery(`ans(` + v + `) :- ` + stripHead(base.String()))
		db := gen.RandomDatabase(rng, q, 1+rng.Intn(15), 3)
		opt := WithDecomposer(GreedyDecomposer())
		if trial%2 == 1 {
			opt = WithDecomposer(FractionalDecomposer())
		}
		plan, err := Compile(q, WithStrategy(StrategyHypertree), opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := plan.Execute(ctx, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pdb, err := PartitionDatabase(db, 3, HashPartition)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.ExecuteSharded(ctx, pdb)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: sharded head projection disagrees on %s", trial, q)
		}
	}
}

// A shard left empty by partitioning more ways than there are tuples must
// not disturb answers.
func TestShardedEmptyShard(t *testing.T) {
	ctx := context.Background()
	q := MustParseQuery(`ans(X, Z) :- r(X, Y), s(Y, Z).`)
	db := NewDatabase()
	if err := db.ParseFacts(`r(a,b). r(c,b). s(b,d).`); err != nil {
		t.Fatal(err)
	}
	pdb, err := PartitionDatabase(db, 7, RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	empties := 0
	for i := 0; i < pdb.NumShards(); i++ {
		if pdb.Shard(i).Relation("r").Rows()+pdb.Shard(i).Relation("s").Rows() == 0 {
			empties++
		}
	}
	if empties == 0 {
		t.Fatalf("expected at least one empty shard with 3 tuples over 7 shards")
	}
	plan, err := Compile(q, WithStrategy(StrategyHypertree))
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Execute(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.ExecuteSharded(ctx, pdb)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || got.Rows() != 2 {
		t.Fatalf("empty shard broke answers: %d rows, want %d", got.Rows(), want.Rows())
	}
}

// Naive- and acyclic-strategy plans route sharded execution through the
// assembled view; answers must still match.
func TestShardedNonHypertreeStrategies(t *testing.T) {
	ctx := context.Background()
	q := MustParseQuery(`ans(X) :- r(X, Y), s(Y, Z).`)
	db := NewDatabase()
	if err := db.ParseFacts(`r(a,b). s(b,c). s(b,d).`); err != nil {
		t.Fatal(err)
	}
	pdb, err := PartitionDatabase(db, 3, HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{StrategyNaive, StrategyAcyclic} {
		plan, err := Compile(q, WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		want, err := plan.Execute(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.ExecuteSharded(ctx, pdb)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("strategy %d: sharded answers differ", s)
		}
	}
}

// A context cancelled mid-scatter must surface promptly as ctx.Err().
func TestShardedCancellation(t *testing.T) {
	q := gen.Cycle(8)
	rng := rand.New(rand.NewSource(11))
	db := gen.RandomDatabase(rng, q, 8000, 40)
	pdb, err := PartitionDatabase(db, 8, HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q, WithStrategy(StrategyHypertree), WithShardWorkers(2))
	if err != nil {
		t.Fatal(err)
	}

	// already-cancelled context: nothing runs
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.ExecuteSharded(ctx, pdb); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context not observed: %v", err)
	}

	// cancel while the scatter is in flight
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := plan.ExecuteSharded(ctx2, pdb)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	cancel2()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("unexpected error: %v", err)
		}
		if err == nil {
			t.Logf("execution finished before the cancel landed (fast machine)")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("sharded execution ignored cancellation")
	}
}

// Race-stress for the serving regime: many goroutines run ExecuteSharded
// over one shared plan and one shared PartitionedDB, a mixer cancels half
// of them mid-flight, and afterwards the goroutine count must return to
// baseline — cancelled scatters whose shard calls were queued behind other
// callers' work must abandon the queue, not leak (see shard.Scatter).
func TestShardedConcurrentCancelNoLeak(t *testing.T) {
	q := gen.Cycle(6)
	db := gen.RandomDatabase(rand.New(rand.NewSource(17)), q, 400, 25)
	pdb, err := PartitionDatabase(db, 4, HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q, WithStrategy(StrategyHypertree), WithShardWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.ExecuteBoolean(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if (g+i)%2 == 0 {
					// cancel mid-flight, racing the execution
					go func() {
						time.Sleep(time.Duration(i%3) * time.Millisecond)
						cancel()
					}()
				}
				got, err := plan.ExecuteBooleanSharded(ctx, pdb)
				switch {
				case err == nil:
					if got != want {
						t.Errorf("sharded verdict %v, want %v", got, want)
					}
				case errors.Is(err, context.Canceled):
					// expected for the cancelled half
				default:
					t.Errorf("unexpected error: %v", err)
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutines leaked: %d alive, baseline %d", n, baseline)
	}
}
