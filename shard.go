package hypertree

import (
	"hypertree/internal/shard"
)

// Sharded execution: the data-complexity reading of Theorem 4.7 says that
// once a decomposition is fixed, evaluation cost is polynomial in the
// database — so the database, not the query, is the axis to parallelise.
// A PartitionedDB splits every relation across N shards; ExecuteSharded
// fans each decomposition node's λ-join out across them and merges the
// per-shard node tables back, answer-identically to Execute.

type (
	// PartitionedDB is a database split across N shards holding disjoint
	// fragments of every relation over one shared constant dictionary.
	// Build one with PartitionDatabase (split an existing Database) or
	// NewPartitionedDB (incremental ingest via AddFact); execute against
	// it with Plan.ExecuteSharded / Plan.ExecuteBooleanSharded.
	PartitionedDB = shard.PartitionedDB
	// PartitionStrategy selects how tuples are placed on shards.
	PartitionStrategy = shard.Strategy
)

// The tuple-placement strategies.
const (
	// HashPartition places each tuple by the hash of its constants, so the
	// same fact always lands on the same shard — stable placement across
	// load orders, idempotent re-ingest, balanced in expectation.
	HashPartition = shard.Hash
	// RoundRobinPartition stripes tuples over shards in insertion order —
	// perfectly balanced fragments even under heavy value skew.
	RoundRobinPartition = shard.RoundRobin
)

// PartitionDatabase splits db into n ≥ 1 disjoint shards under the given
// placement strategy. The shards share db's constant dictionary and db
// itself remains the assembled view, so it must not be mutated while the
// PartitionedDB is in use.
func PartitionDatabase(db *Database, n int, s PartitionStrategy) (*PartitionedDB, error) {
	return shard.Partition(db, n, s)
}

// NewPartitionedDB returns an empty n-shard database for incremental
// ingest: AddFact routes every new fact onto exactly one shard (duplicates
// are dropped, preserving set semantics across the fleet of shards).
func NewPartitionedDB(n int, s PartitionStrategy) (*PartitionedDB, error) {
	return shard.New(n, s)
}
