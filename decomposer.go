package hypertree

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"hypertree/internal/decomp"
	"hypertree/internal/fhd"
	"hypertree/internal/ghd"
	"hypertree/internal/querydecomp"
)

// Typed errors of the compilation pipeline. The internal search packages
// return these same sentinels, so errors.Is works across the whole API.
var (
	// ErrInvalidWidth reports a width bound k < 1.
	ErrInvalidWidth = decomp.ErrInvalidWidth
	// ErrWidthExceeded reports that the search completed and proved that no
	// decomposition exists within the requested width bound.
	ErrWidthExceeded = decomp.ErrWidthExceeded
	// ErrStepBudget reports that a step budget cut the search off before it
	// could find a decomposition or prove that none exists.
	ErrStepBudget = decomp.ErrStepBudget
	// ErrCyclic reports that StrategyAcyclic was requested for a query that
	// has no join tree.
	ErrCyclic = errors.New("hypertree: query is cyclic (no join tree)")
)

// DecomposeRequest carries the tuning knobs Compile hands to a Decomposer.
type DecomposeRequest struct {
	// MaxWidth bounds the width of the decomposition; 0 means "minimise":
	// search k = 1, 2, ... until a decomposition is found.
	MaxWidth int
	// StepBudget bounds the number of search steps (candidate separator
	// sets tested, cumulative across a minimising width search); 0 means
	// unlimited. An exhausted budget yields ErrStepBudget.
	StepBudget int
	// Workers is the requested parallelism for decomposers that support it
	// (≤ 1 means sequential).
	Workers int
	// EdgeRows, when non-nil, holds the estimated cardinality of the
	// relation backing each hypergraph edge (indexed by edge id). Compile
	// fills it from the statistics given via WithStats/WithCostModel; the
	// built-in heuristic engines use it to break width ties toward
	// decompositions of lower estimated cost, and custom Decomposers are
	// free to ignore it — statistics influence plan choice, never plan
	// validity.
	EdgeRows []float64
}

// Decomposer is a pluggable decomposition strategy: given a query hypergraph
// it returns a hypertree decomposition satisfying the request, or a typed
// error — ErrWidthExceeded when it proves none exists within req.MaxWidth,
// ErrStepBudget when req.StepBudget ran out, or ctx.Err() on cancellation.
// Implementations must be safe for concurrent use; Compile validates every
// returned decomposition against Definition 4.1 (or, for decomposers that
// declare themselves GeneralizedDecomposers, against the GHD conditions 1–3
// only).
//
// Four built-in strategies ship with the package: KDecomposer,
// ParallelKDecomposer and QueryDecomposer cover the paper's exact
// algorithms, and GreedyDecomposer is the heuristic GHD engine. Further
// methods plug in through WithDecomposer without another API change.
type Decomposer interface {
	// Name identifies the strategy; it participates in plan-cache keys, so
	// two Decomposers with the same name must be interchangeable.
	Name() string
	Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error)
}

// FractionalWidthDecomposer marks a Decomposer whose decompositions carry
// fractional λ weights (decomp.Node.Weights): Compile validates such output
// with ValidateFHD — the GHD cover conditions on the integral support sets
// plus the fractional cover condition on the weights — and the resulting
// Plan reports a FractionalWidth that can drop strictly below Width. Every
// fractional decomposition is in particular a GHD over its support sets, so
// evaluation is unchanged. FractionalDecomposer is the built-in
// implementation.
type FractionalWidthDecomposer interface {
	Decomposer
	// Fractional reports whether the produced decompositions attach
	// fractional λ weights (and must be validated fractionally).
	Fractional() bool
}

// GeneralizedDecomposer marks a Decomposer whose output is a generalized
// hypertree decomposition: it guarantees conditions 1–3 of Definition 4.1
// but not the descendant condition (4). Compile validates such output with
// ValidateGHD instead of the full ValidateHD — the Lemma 4.6 evaluation
// needs only the cover conditions, so GHD plans execute through the same
// machinery and return the same answers. Implement this interface (with
// Generalized returning true) on any custom heuristic decomposer.
type GeneralizedDecomposer interface {
	Decomposer
	// Generalized reports whether the produced decompositions may violate
	// condition 4 (and must therefore be validated as GHDs).
	Generalized() bool
}

// KDecomposer returns the sequential k-decomp Decomposer (the alternating
// algorithm of Section 5 in deterministic, memoised form). It honours
// MaxWidth and StepBudget and ignores Workers.
func KDecomposer() Decomposer { return kDecomposer{} }

type kDecomposer struct{}

func (kDecomposer) Name() string { return "k-decomp" }

func (kDecomposer) Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error) {
	if req.MaxWidth == 0 {
		_, d, err := decomp.WidthContext(ctx, h, req.StepBudget)
		return d, err
	}
	return decomp.DecomposeContext(ctx, h, req.MaxWidth, req.StepBudget)
}

// ParallelKDecomposer returns the parallel k-decomp Decomposer: the
// root-level guesses of the alternating algorithm are distributed over
// req.Workers goroutines (≤ 0 selects GOMAXPROCS) — the operational reading
// of the paper's LOGCFL parallelizability statement. StepBudget is enforced
// as a cross-worker total of candidate sets tested.
func ParallelKDecomposer() Decomposer { return parallelKDecomposer{} }

type parallelKDecomposer struct{}

func (parallelKDecomposer) Name() string { return "parallel-k-decomp" }

func (parallelKDecomposer) Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error) {
	if req.MaxWidth != 0 {
		return decomp.ParallelDecomposeContext(ctx, h, req.MaxWidth, req.Workers, req.StepBudget)
	}
	_, d, err := decomp.ParallelWidthContext(ctx, h, req.Workers, req.StepBudget)
	return d, err
}

// QueryDecomposer returns the pure query-decomposition Decomposer
// (Definition 3.1, the notion of Chekuri & Rajaraman). Deciding qw ≤ 4 is
// NP-complete (Theorem 3.4), so this is an exponential exact search meant
// for small queries; StepBudget is the safety valve. Every pure query
// decomposition is also a valid hypertree decomposition (χ = var(λ)), so
// the resulting plans evaluate through the same Lemma 4.6 machinery.
func QueryDecomposer() Decomposer { return queryDecomposer{} }

type queryDecomposer struct{}

func (queryDecomposer) Name() string { return "query-decomp" }

func (queryDecomposer) Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error) {
	if req.MaxWidth == 0 {
		_, d, err := querydecomp.WidthContext(ctx, h, 1, req.StepBudget)
		return d, err
	}
	return querydecomp.SearchContext(ctx, h, req.MaxWidth, req.StepBudget)
}

// GreedyOrdering selects a vertex-ordering heuristic for GreedyDecomposer.
type GreedyOrdering = ghd.Ordering

// The greedy vertex-ordering heuristics over the primal graph.
const (
	// GreedyMinFill eliminates the vertex adding the fewest fill edges.
	GreedyMinFill = ghd.MinFill
	// GreedyMinDegree eliminates the vertex of minimum current degree.
	GreedyMinDegree = ghd.MinDegree
	// GreedyMaxCardinality eliminates in reverse maximal-cardinality-search
	// order (exact on chordal primal graphs).
	GreedyMaxCardinality = ghd.MaxCardinality
)

// GreedyOption tunes the GreedyDecomposer improvement loop.
type GreedyOption func(*ghd.Options)

// WithGreedyOrderings restricts the ordering portfolio (default: min-fill,
// min-degree and max-cardinality are all tried).
func WithGreedyOrderings(orderings ...GreedyOrdering) GreedyOption {
	return func(o *ghd.Options) { o.Orderings = orderings }
}

// WithGreedyRestarts sets the number of randomized-tie-break repetitions of
// each ordering beyond the deterministic first pass (default 2; n < 0
// disables restarts).
func WithGreedyRestarts(n int) GreedyOption {
	return func(o *ghd.Options) {
		if n <= 0 {
			n = -1
		}
		o.Restarts = n
	}
}

// WithGreedySeed seeds the randomized tie-breaking (default 1, so repeated
// compilations are reproducible).
func WithGreedySeed(seed int64) GreedyOption {
	return func(o *ghd.Options) { o.Seed = seed }
}

// GreedyDecomposer returns the heuristic GHD Decomposer: greedy vertex
// orderings over the primal graph produce tree decompositions, a greedy
// edge-cover pass turns each bag into a λ label, and an improvement loop
// keeps the smallest width across the portfolio (see internal/ghd). The
// output is a generalized hypertree decomposition — conditions 1–3 of
// Definition 4.1 without the descendant condition — which evaluates through
// the identical Lemma 4.6 machinery.
//
// Unlike the exact searches this runs in polynomial time, so it compiles
// hypergraphs (e.g. random CSPs with 50+ atoms) that KDecomposer cannot
// touch; the price is that the width is only an upper bound on ghw, and
// ErrWidthExceeded under WithMaxWidth means "the heuristic found nothing
// within the bound", not a proof that nothing exists. It honours MaxWidth,
// StepBudget (one step = one vertex elimination decision; when the budget
// dies mid-loop the best decomposition already found is returned) and
// Workers (trials run concurrently; without a step budget or width bound
// the result is identical to the sequential one — with either set, the
// early cut-off point, and hence the achieved width, may vary).
func GreedyDecomposer(opts ...GreedyOption) Decomposer {
	var o ghd.Options
	for _, opt := range opts {
		opt(&o)
	}
	return greedyDecomposer{opts: o, name: greedyName(o)}
}

type greedyDecomposer struct {
	opts ghd.Options
	name string
}

// greedyName encodes the tuning into the strategy name: the name
// participates in plan-cache keys, and two GreedyDecomposers are only
// interchangeable when their whole configuration matches — a default "ghd"
// and a seeded, restricted-portfolio one must not share cached plans.
func greedyName(o ghd.Options) string { return heuristicName("ghd", o) }

// heuristicName is greedyName generalised over the strategy prefix; the
// fractional engine reuses the same tuning surface under "fhd".
func heuristicName(prefix string, o ghd.Options) string {
	if len(o.Orderings) == 0 && o.Restarts == 0 && o.Seed == 0 {
		return prefix
	}
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteByte('[')
	for i, ord := range o.Orderings {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ord.String())
	}
	fmt.Fprintf(&b, ";r=%d;s=%d]", o.Restarts, o.Seed)
	return b.String()
}

func (g greedyDecomposer) Name() string { return g.name }

// Generalized marks the output as GHD-only: Compile validates conditions
// 1–3 and skips the descendant condition.
func (greedyDecomposer) Generalized() bool { return true }

func (g greedyDecomposer) Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error) {
	o := g.opts
	o.EdgeRows = req.EdgeRows
	return ghd.Decompose(ctx, h, o, req.MaxWidth, req.StepBudget, req.Workers)
}

// FractionalDecomposer returns the fractional hypertree Decomposer: the
// same greedy tree shapes as GreedyDecomposer (so it accepts the same
// GreedyOption tuning — orderings, restarts, seed), but every bag is
// re-covered by its minimum *fractional* edge cover, priced by one small
// LP per bag (internal/lp), and the shape of minimum fractional width
// wins. The fractional width fhw satisfies fhw ≤ ghw ≤ hw (Fischl, Gottlob
// & Pichler) with the gap realised already on small cliques — fhw(K5) =
// 5/2 against ghw = 3 — so Plan.FractionalWidth can report a strictly
// tighter evaluation-cost exponent than any integral decomposer: by the
// AGM bound each node table holds at most r^fhw tuples.
//
// The λ label of every node is the integral support of its optimal
// fractional cover — still an edge cover of the bag — so the output is
// simultaneously a valid GHD and executes through the unchanged Lemma 4.6
// machinery, single-database and sharded alike. WithMaxWidth(k) bounds the
// accepted fractional width (the heuristic proves nothing about fhw(H) on
// failure); WithStepBudget counts vertex eliminations plus simplex pivots;
// Workers is ignored (the re-covering pass is polynomial and fast).
func FractionalDecomposer(opts ...GreedyOption) Decomposer {
	var o ghd.Options
	for _, opt := range opts {
		opt(&o)
	}
	return fractionalDecomposer{opts: o, name: heuristicName("fhd", o)}
}

type fractionalDecomposer struct {
	opts ghd.Options
	name string
}

func (f fractionalDecomposer) Name() string { return f.name }

// Generalized marks the integral support sets as GHD-only (conditions 1–3).
func (fractionalDecomposer) Generalized() bool { return true }

// Fractional marks the output as weight-carrying: Compile validates it with
// ValidateFHD and the Plan reports its fractional width.
func (fractionalDecomposer) Fractional() bool { return true }

func (f fractionalDecomposer) Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error) {
	o := f.opts
	o.EdgeRows = req.EdgeRows
	return fhd.Decompose(ctx, h, o, req.MaxWidth, req.StepBudget)
}
