package hypertree

import (
	"context"
	"errors"

	"hypertree/internal/decomp"
	"hypertree/internal/querydecomp"
)

// Typed errors of the compilation pipeline. The internal search packages
// return these same sentinels, so errors.Is works across the whole API.
var (
	// ErrInvalidWidth reports a width bound k < 1.
	ErrInvalidWidth = decomp.ErrInvalidWidth
	// ErrWidthExceeded reports that the search completed and proved that no
	// decomposition exists within the requested width bound.
	ErrWidthExceeded = decomp.ErrWidthExceeded
	// ErrStepBudget reports that a step budget cut the search off before it
	// could find a decomposition or prove that none exists.
	ErrStepBudget = decomp.ErrStepBudget
	// ErrCyclic reports that StrategyAcyclic was requested for a query that
	// has no join tree.
	ErrCyclic = errors.New("hypertree: query is cyclic (no join tree)")
)

// DecomposeRequest carries the tuning knobs Compile hands to a Decomposer.
type DecomposeRequest struct {
	// MaxWidth bounds the width of the decomposition; 0 means "minimise":
	// search k = 1, 2, ... until a decomposition is found.
	MaxWidth int
	// StepBudget bounds the number of search steps (candidate separator
	// sets tested, cumulative across a minimising width search); 0 means
	// unlimited. An exhausted budget yields ErrStepBudget.
	StepBudget int
	// Workers is the requested parallelism for decomposers that support it
	// (≤ 1 means sequential).
	Workers int
}

// Decomposer is a pluggable decomposition strategy: given a query hypergraph
// it returns a hypertree decomposition satisfying the request, or a typed
// error — ErrWidthExceeded when it proves none exists within req.MaxWidth,
// ErrStepBudget when req.StepBudget ran out, or ctx.Err() on cancellation.
// Implementations must be safe for concurrent use; Compile validates every
// returned decomposition against Definition 4.1.
//
// Three built-in strategies cover the paper's algorithms (KDecomposer,
// ParallelKDecomposer, QueryDecomposer); future methods — greedy heuristics,
// generalised hypertree decompositions — plug in through WithDecomposer
// without another API change.
type Decomposer interface {
	// Name identifies the strategy; it participates in plan-cache keys, so
	// two Decomposers with the same name must be interchangeable.
	Name() string
	Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error)
}

// KDecomposer returns the sequential k-decomp Decomposer (the alternating
// algorithm of Section 5 in deterministic, memoised form). It honours
// MaxWidth and StepBudget and ignores Workers.
func KDecomposer() Decomposer { return kDecomposer{} }

type kDecomposer struct{}

func (kDecomposer) Name() string { return "k-decomp" }

func (kDecomposer) Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error) {
	if req.MaxWidth == 0 {
		_, d, err := decomp.WidthContext(ctx, h, req.StepBudget)
		return d, err
	}
	return decomp.DecomposeContext(ctx, h, req.MaxWidth, req.StepBudget)
}

// ParallelKDecomposer returns the parallel k-decomp Decomposer: the
// root-level guesses of the alternating algorithm are distributed over
// req.Workers goroutines (≤ 0 selects GOMAXPROCS) — the operational reading
// of the paper's LOGCFL parallelizability statement. StepBudget is enforced
// as a cross-worker total of candidate sets tested.
func ParallelKDecomposer() Decomposer { return parallelKDecomposer{} }

type parallelKDecomposer struct{}

func (parallelKDecomposer) Name() string { return "parallel-k-decomp" }

func (parallelKDecomposer) Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error) {
	if req.MaxWidth != 0 {
		return decomp.ParallelDecomposeContext(ctx, h, req.MaxWidth, req.Workers, req.StepBudget)
	}
	_, d, err := decomp.ParallelWidthContext(ctx, h, req.Workers, req.StepBudget)
	return d, err
}

// QueryDecomposer returns the pure query-decomposition Decomposer
// (Definition 3.1, the notion of Chekuri & Rajaraman). Deciding qw ≤ 4 is
// NP-complete (Theorem 3.4), so this is an exponential exact search meant
// for small queries; StepBudget is the safety valve. Every pure query
// decomposition is also a valid hypertree decomposition (χ = var(λ)), so
// the resulting plans evaluate through the same Lemma 4.6 machinery.
func QueryDecomposer() Decomposer { return queryDecomposer{} }

type queryDecomposer struct{}

func (queryDecomposer) Name() string { return "query-decomp" }

func (queryDecomposer) Decompose(ctx context.Context, h *Hypergraph, req DecomposeRequest) (*Decomposition, error) {
	if req.MaxWidth == 0 {
		_, d, err := querydecomp.WidthContext(ctx, h, 1, req.StepBudget)
		return d, err
	}
	return querydecomp.SearchContext(ctx, h, req.MaxWidth, req.StepBudget)
}
