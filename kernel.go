package hypertree

import (
	"fmt"

	"hypertree/internal/hdeval"
)

// JoinKernel names the algorithm a hypertree-strategy plan uses for each
// decomposition node's intra-bag λ-join (the χ-projected join of Lemma 4.6).
// The kernel is pure mechanism: every kernel computes exactly the same node
// tables, so plans differing only in kernel return identical answers on
// every path (Execute, ExecuteBoolean, and both sharded forms).
type JoinKernel = hdeval.Kernel

// The available join kernels, selectable with WithJoinKernel.
//
// JoinKernelChain (the default) folds the λ relations through a left-deep
// chain of binary hash joins and projects to χ with a deduplicating pass —
// cheap per bag and unbeatable on two-relation bags. JoinKernelLeapfrog
// encodes the λ relations into sorted, dictionary-coded columnar tries and
// intersects them variable by variable (leapfrog triejoin): output (χ)
// variables lead the order, so node tables stream out sorted and distinct,
// and with fractional cover weights the existential suffix is ordered by
// descending cover weight, making total work worst-case optimal with
// respect to the AGM bound r^fhw. JoinKernelAuto picks per node: with a
// statistics snapshot attached (WithStats/WithCostModel) each bag's λ-join
// is priced as a hash chain versus a leapfrog encode+enumerate from the
// per-edge row and distinct-count estimates — capped by the AGM bound
// under fractional covers — and the cheaper kernel runs; without
// statistics the arity rule decides (leapfrog on bags joining ≥ 3
// relations, or ≥ 2 under a fractional cover). Every decision is recorded
// per node, qualified with its reason, in Plan.Explain and on node spans.
const (
	JoinKernelChain    JoinKernel = hdeval.KernelChain
	JoinKernelLeapfrog JoinKernel = hdeval.KernelLeapfrog
	JoinKernelAuto     JoinKernel = hdeval.KernelAuto
)

// ParseJoinKernel parses a kernel name ("chain", "leapfrog" or "auto"; ""
// means the chain default), for CLI flags and config files.
func ParseJoinKernel(s string) (JoinKernel, error) {
	return hdeval.ParseKernel(s)
}

// WithJoinKernel selects the intra-bag join kernel of hypertree-strategy
// plans (see JoinKernel; the default is JoinKernelChain). The option is
// answer-neutral — it changes how node tables are computed, never their
// contents — and is ignored by the naive and acyclic strategies, which have
// no decomposition bags. Kernel choice is part of the PlanCache key.
func WithJoinKernel(k JoinKernel) CompileOption {
	return func(c *compileConfig) {
		kn, err := hdeval.ParseKernel(string(k))
		if err != nil {
			if c.err == nil {
				c.err = fmt.Errorf("WithJoinKernel: %w", err)
			}
			return
		}
		c.kernel = kn
	}
}

// JoinKernel returns the plan's configured intra-bag join kernel
// (JoinKernelChain when the option was not given or the strategy uses no
// decomposition).
func (p *Plan) JoinKernel() JoinKernel {
	if p.kernel == "" {
		return JoinKernelChain
	}
	return p.kernel
}

// ColumnarCacheMetrics returns the process-wide hit/miss totals of the
// plan-level Columnar encoding cache the leapfrog kernel encodes λ
// relations through (monotonic since process start). A warm plan executing
// repeatedly against one database snapshot hits on every λ encoding after
// the first execution; a database swap invalidates every cached encoding,
// so misses after a swap mean re-encoding, not a defect.
func ColumnarCacheMetrics() (hits, misses uint64) {
	return hdeval.ColumnarCacheCounters()
}
