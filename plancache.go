package hypertree

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"hypertree/internal/cq"
)

// PlanCache is an LRU cache of compiled Plans keyed by the canonical form
// of the query plus the compile options — including the Decomposer name, so
// e.g. a "ghd" plan and a "k-decomp" plan for the same query never collide.
//
// The canonical key is rename-invariant but NOT atom-reorder-invariant:
// α-renaming the variables of a query maps it to the same slot (the
// serving case — syntactically fresh requests reuse one plan), whereas
// permuting its body atoms compiles and caches separately, even though the
// answers are set-equal. Atom order is significant because answer tables
// carry the compiled query's positional variable IDs; making reordering
// hit would require remapping the cached plan's variable IDs onto the
// caller's query (see ROADMAP). The invariant is pinned by
// TestPlanCacheKeyRenameInvariantNotReorderInvariant. It
// makes the Theorem 4.7 amortisation automatic: recompiling a query that
// was already planned — under any variable naming — reuses the
// decomposition instead of re-running the exponential-in-k search. An
// optional TTL (NewPlanCacheTTL) expires entries lazily on access. Safe for
// concurrent use.
type PlanCache struct {
	mu        sync.Mutex
	capacity  int
	ttl       time.Duration // ≤ 0: entries never expire
	now       func() time.Time
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type planCacheEntry struct {
	key   string
	plan  *Plan
	added time.Time
}

// NewPlanCache returns an empty cache holding at most capacity plans
// (capacity < 1 is treated as 1); entries never expire.
func NewPlanCache(capacity int) *PlanCache {
	return NewPlanCacheTTL(capacity, 0)
}

// NewPlanCacheTTL is NewPlanCache with a time-to-live: an entry older than
// ttl is evicted (and recompiled) on its next access, and Len sweeps
// expired entries out. ttl ≤ 0 disables expiry. TTL eviction suits serving
// deployments where schemas drift: a plan compiled against yesterday's
// workload stops being served without a manual Purge.
func NewPlanCacheTTL(capacity int, ttl time.Duration) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity: capacity,
		ttl:      ttl,
		now:      time.Now,
		ll:       list.New(),
		items:    map[string]*list.Element{},
	}
}

// Compile returns the cached plan for (q, opts) or compiles and caches one.
// Two concurrent misses on the same key may both compile; the first to
// finish wins the cache slot (no lock is held across the search).
func (c *PlanCache) Compile(ctx context.Context, q *Query, opts ...CompileOption) (*Plan, error) {
	cfg, err := newCompileConfig(opts)
	if err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("hypertree: Compile on a nil query")
	}
	key := planCacheKey(q, cfg)

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		entry := el.Value.(*planCacheEntry)
		if !c.expired(entry) {
			c.ll.MoveToFront(el)
			c.hits++
			p := entry.plan
			c.mu.Unlock()
			return p, nil
		}
		c.removeLocked(el)
	}
	c.misses++
	c.mu.Unlock()

	p, err := compile(ctx, q, cfg)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; !ok {
		c.items[key] = c.ll.PushFront(&planCacheEntry{key: key, plan: p, added: c.now()})
		for c.ll.Len() > c.capacity {
			c.removeLocked(c.ll.Back())
		}
	}
	return p, nil
}

// expired reports whether the entry's TTL has lapsed.
func (c *PlanCache) expired(e *planCacheEntry) bool {
	return c.ttl > 0 && c.now().Sub(e.added) > c.ttl
}

// removeLocked evicts an element and counts it. Callers hold c.mu.
func (c *PlanCache) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.items, el.Value.(*planCacheEntry).key)
	c.evictions++
}

// Len returns the number of live cached plans, sweeping out entries whose
// TTL has lapsed first.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	return c.ll.Len()
}

// sweepLocked evicts every expired entry. Callers hold c.mu.
func (c *PlanCache) sweepLocked() {
	if c.ttl <= 0 {
		return
	}
	var expired []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if c.expired(el.Value.(*planCacheEntry)) {
			expired = append(expired, el)
		}
	}
	for _, el := range expired {
		c.removeLocked(el)
	}
}

// Stats returns the cumulative hit and miss counters. Like Metrics it is
// safe to call concurrently with Compile from any number of goroutines.
//
// Deprecated: use Metrics — it reports the same hit/miss counters plus
// evictions and the live entry count in one atomic snapshot. Stats predates
// Metrics and survives as this thin wrapper; note that, like Metrics, it
// now sweeps expired TTL entries as a side effect.
func (c *PlanCache) Stats() (hits, misses uint64) {
	m := c.Metrics()
	return m.Hits, m.Misses
}

// CacheMetrics is a point-in-time snapshot of the cache counters: a TTL
// expiry and an LRU displacement both count as an eviction.
type CacheMetrics struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
}

// Metrics returns the cumulative counters plus the current size — the hook
// for exporting cache behaviour to monitoring. The snapshot is atomic:
// expired entries are swept and the counters read under one lock, so Len
// and Evictions are mutually consistent. Metrics is safe under any mix of
// concurrent Compile, Len, Purge and Metrics calls: every counter mutation
// happens under the same mutex the snapshot takes (audited with the race
// detector; see TestPlanCacheMetricsConcurrent).
//
// Counters are attributed per resolved strategy name: "k-decomp", "ghd",
// "fhd" and "auto" compiles of the same query occupy four distinct slots
// (see planCacheKey), so a hit under one name never masks a miss under
// another. An adaptive compile counts against "auto" regardless of which
// engine the race resolved to — the resolved winner lives on the cached
// Plan (DecomposerName reports "auto(<engine>)"), not in the key, which is
// what keeps repeated auto lookups hitting even when the race is
// nondeterministic about its winner.
func (c *PlanCache) Metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	return CacheMetrics{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.ll.Len()}
}

// Capacity returns the maximum number of plans the cache holds — the bound
// LRU eviction enforces, fixed at construction.
func (c *PlanCache) Capacity() int { return c.capacity }

// TTL returns the cache's time-to-live (0 when entries never expire).
func (c *PlanCache) TTL() time.Duration {
	if c.ttl < 0 {
		return 0
	}
	return c.ttl
}

// Purge empties the cache (counters are kept).
func (c *PlanCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
}

// planCacheKey fingerprints the query and every option that shapes the
// plan. The strategy-name component is the decomposer name the caller
// asked for — "auto" for WithAutoStrategy compiles (newCompileConfig
// rejects auto + WithDecomposer, so the two can never be confused) — which
// keeps lookups stable even though an auto plan records the resolved race
// winner in Plan.DecomposerName. The statistics snapshot participates via
// its Fingerprint (newCompileConfig resolves WithStats collection before
// keying): cost-based planning picks among same-width plans by the
// snapshot, so plans compiled under different statistics — or none — must
// never serve each other's lookups. The join kernel (WithJoinKernel) joins
// the key too: kernels are answer-neutral, but a leapfrog plan must not
// satisfy a chain lookup or benchmarks comparing the two would measure one
// cached evaluator.
func planCacheKey(q *Query, cfg *compileConfig) string {
	name := ""
	if cfg.decomposer != nil {
		name = cfg.decomposer.Name()
	}
	if cfg.race {
		name = "auto"
	}
	return fmt.Sprintf("%s|s%d|k%d|b%d|w%d|sw%d|%s|st%s|kn%s",
		cq.CanonicalForm(q), cfg.strategy, cfg.maxWidth, cfg.stepBudget, cfg.workers, cfg.shardWorkers, name,
		cfg.stats.Fingerprint(), cfg.kernel)
}

// DefaultPlanCacheSize is the capacity of the package-level plan cache.
const DefaultPlanCacheSize = 256

// DefaultPlanCache is the package-level plan cache used by the deprecated
// Evaluate/EvaluateBoolean wrappers, giving legacy callers the compile-once
// behaviour for free.
var DefaultPlanCache = NewPlanCache(DefaultPlanCacheSize)
