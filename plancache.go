package hypertree

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"hypertree/internal/cq"
)

// PlanCache is an LRU cache of compiled Plans keyed by the canonical form
// of the query (invariant under variable renaming; atom order is
// significant because answer tables carry the compiled query's variable
// IDs) plus the compile options. It makes the Theorem 4.7 amortisation
// automatic: recompiling a query that was already planned — under any
// variable naming — reuses the decomposition instead of re-running the
// exponential-in-k search. Safe for concurrent use.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type planCacheEntry struct {
	key  string
	plan *Plan
}

// NewPlanCache returns an empty cache holding at most capacity plans
// (capacity < 1 is treated as 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{capacity: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Compile returns the cached plan for (q, opts) or compiles and caches one.
// Two concurrent misses on the same key may both compile; the first to
// finish wins the cache slot (no lock is held across the search).
func (c *PlanCache) Compile(ctx context.Context, q *Query, opts ...CompileOption) (*Plan, error) {
	cfg, err := newCompileConfig(opts)
	if err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("hypertree: Compile on a nil query")
	}
	key := planCacheKey(q, cfg)

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		p := el.Value.(*planCacheEntry).plan
		c.mu.Unlock()
		return p, nil
	}
	c.misses++
	c.mu.Unlock()

	p, err := compile(ctx, q, cfg)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; !ok {
		c.items[key] = c.ll.PushFront(&planCacheEntry{key: key, plan: p})
		for c.ll.Len() > c.capacity {
			last := c.ll.Back()
			c.ll.Remove(last)
			delete(c.items, last.Value.(*planCacheEntry).key)
		}
	}
	return p, nil
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counters.
func (c *PlanCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge empties the cache (counters are kept).
func (c *PlanCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
}

// planCacheKey fingerprints the query and every option that shapes the plan.
func planCacheKey(q *Query, cfg *compileConfig) string {
	name := ""
	if cfg.decomposer != nil {
		name = cfg.decomposer.Name()
	}
	return fmt.Sprintf("%s|s%d|k%d|b%d|w%d|%s",
		cq.CanonicalForm(q), cfg.strategy, cfg.maxWidth, cfg.stepBudget, cfg.workers, name)
}

// DefaultPlanCacheSize is the capacity of the package-level plan cache.
const DefaultPlanCacheSize = 256

// DefaultPlanCache is the package-level plan cache used by the deprecated
// Evaluate/EvaluateBoolean wrappers, giving legacy callers the compile-once
// behaviour for free.
var DefaultPlanCache = NewPlanCache(DefaultPlanCacheSize)
