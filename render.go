package hypertree

import (
	"fmt"
	"strings"
)

// AtomRepresentation renders a decomposition of q in the style of Fig. 7:
// every node shows its λ atoms with the variables outside χ(p) replaced by
// the anonymous variable '_', so χ(p) can be read off as the named
// variables.
func AtomRepresentation(q *Query, d *Decomposition) string {
	if d == nil || d.Root == nil {
		return "(empty decomposition)\n"
	}
	_, edgeToAtom := q.Hypergraph()
	var b strings.Builder
	var visit func(n *DecompositionNode, depth int)
	visit = func(n *DecompositionNode, depth int) {
		var atoms []string
		n.Lambda.ForEach(func(e int) {
			atom := q.Atoms[edgeToAtom[e]]
			parts := make([]string, len(atom.Args))
			for i, t := range atom.Args {
				if t.IsVar {
					v, _ := q.VarIndex(t.Name)
					if n.Chi.Has(v) {
						parts[i] = t.Name
					} else {
						parts[i] = "_"
					}
				} else {
					parts[i] = t.Name
				}
			}
			atoms = append(atoms, fmt.Sprintf("%s(%s)", atom.Pred, strings.Join(parts, ",")))
		})
		fmt.Fprintf(&b, "%s{ %s }\n", strings.Repeat("  ", depth), strings.Join(atoms, ", "))
		for _, c := range n.Children {
			visit(c, depth+1)
		}
	}
	visit(d.Root, 0)
	return b.String()
}

// ChiLambdaRepresentation renders a decomposition with explicit χ / λ sets,
// one node per line, indented by depth (the style of Fig. 6).
func ChiLambdaRepresentation(d *Decomposition) string { return d.String() }

// DOT renders a decomposition in Graphviz format.
func DOT(d *Decomposition) string { return d.DOT() }
