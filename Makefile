GO ?= go

.PHONY: check fmt vet build test bench

# The full gate CI runs: formatting, vet, build, tests.
check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
