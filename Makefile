GO ?= go

.PHONY: check fmt vet build test race bench

# The full gate CI runs: formatting, vet, build, race-instrumented tests
# (the parallel evaluator and decomposition code must stay race-clean).
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
