GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke docs serve-smoke fuzz-smoke

# The full gate CI runs: formatting, vet, build, race-instrumented tests
# (the parallel evaluator and decomposition code must stay race-clean),
# the documentation gate, and a short coverage-guided fuzz burst over the
# query parser/renderer round trip.
check: fmt vet build race docs fuzz-smoke

# Documentation gate: vet + gofmt plus godoc coverage — every exported
# identifier in every package must carry a doc comment (see
# internal/tools/doccheck; runnable Example functions are exercised by the
# ordinary test targets).
docs: fmt vet
	$(GO) run ./internal/tools/doccheck -r .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# CI smoke of the experiment suite: every benchmark once (the bench
# target), then every hdbench experiment (E1–E29) at -smoke scale — the
# experiments carry their own assertions, so a bit-rotted experiment
# fails the build. CI captures this target's output as a workflow
# artifact, so keep it self-describing: it is the inspectable perf
# trajectory across PRs.
bench-smoke: bench
	$(GO) run ./cmd/hdbench -smoke

# Short coverage-guided runs of the cq fuzz targets (seed corpora under
# internal/cq/testdata/fuzz): parse→render→parse must round-trip and
# CanonicalForm must be α-rename-invariant. 5s per target keeps the gate
# fast; run with a longer -fuzztime locally when touching the parser.
fuzz-smoke:
	$(GO) test ./internal/cq/ -fuzz FuzzParseQuery -fuzztime 5s -run '^$$'
	$(GO) test ./internal/cq/ -fuzz FuzzCanonicalForm -fuzztime 5s -run '^$$'

# End-to-end smoke of the serving path: boot hdserve over the generated
# serving database with sampled tracing and OTel file export, drive a 5s
# hdload burst, validate the metrics exposition (exemplars included) and
# the export file, drain on SIGTERM, then run the hdload -churn exercise
# against a second server and assert the q-error-triggered statistics
# refresh closed the feedback loop (see scripts/serve_smoke.sh).
serve-smoke:
	sh ./scripts/serve_smoke.sh
