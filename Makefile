GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke docs serve-smoke

# The full gate CI runs: formatting, vet, build, race-instrumented tests
# (the parallel evaluator and decomposition code must stay race-clean),
# plus the documentation gate.
check: fmt vet build race docs

# Documentation gate: vet + gofmt plus godoc coverage — every exported
# identifier in every package must carry a doc comment (see
# internal/tools/doccheck; runnable Example functions are exercised by the
# ordinary test targets).
docs: fmt vet
	$(GO) run ./internal/tools/doccheck -r .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# CI smoke of the experiment suite: every benchmark once (the bench
# target), then every hdbench experiment (E1–E25) at -smoke scale — the
# experiments carry their own assertions, so a bit-rotted experiment
# fails the build. CI captures this target's output as a workflow
# artifact, so keep it self-describing: it is the inspectable perf
# trajectory across PRs.
bench-smoke: bench
	$(GO) run ./cmd/hdbench -smoke

# End-to-end smoke of the serving path: boot hdserve over the generated
# serving database, drive a 5s hdload burst, drain on SIGTERM, and fail on
# any non-2xx response or a zero PlanCache hit rate (see
# scripts/serve_smoke.sh).
serve-smoke:
	sh ./scripts/serve_smoke.sh
